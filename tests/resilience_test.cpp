// Self-healing campaign execution: the failpoint registry (matching, spec
// parsing, env arming), ResilientFaultSim retry/respawn/degradation —
// byte-identical to the serial engines under every injected failure
// schedule that eventually succeeds, including full ladder descents — and
// the scheduler's channel-retry / quarantine policy: a persistently failing
// core is excluded with CoreVerdict::kQuarantined while every other core's
// report slice stays field-identical to a healthy run, and a transient
// channel failure is invisible in the campaign fingerprint.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <cstdlib>
#include <memory>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/session_channel.hpp"
#include "core/soc.hpp"
#include "fault/backend.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/failpoint.hpp"
#include "fault/fault.hpp"
#include "fault/process_fsim.hpp"
#include "fault/resilient_fsim.hpp"
#include "netlist/builder.hpp"

namespace corebist {
namespace {

/// Random combinational DAG over `width` inputs (as in process_fsim_test).
Netlist randomComb(std::uint64_t seed, int width, int gates) {
  Netlist nl("rand");
  Builder b(nl);
  const Bus x = b.input("x", width);
  std::vector<NetId> pool(x.begin(), x.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(2 + rng() % 9);  // kBuf .. kMux2
    const NetId a = pool[rng() % pool.size()];
    const NetId bnet = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bnet);
        break;
      default:
        out = nl.addMux(a, bnet, s);
        break;
    }
    pool.push_back(out);
  }
  Bus outs(pool.end() - std::min<std::size_t>(8, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

void expectSameResult(const FaultSimResult& ref, const FaultSimResult& got,
                      const char* what) {
  EXPECT_EQ(ref.first_detect, got.first_detect) << what;
  EXPECT_EQ(ref.window_mask, got.window_mask) << what;
  EXPECT_EQ(ref.misr_detect, got.misr_detect) << what;
  EXPECT_EQ(ref.sig_words_per_fault, got.sig_words_per_fault) << what;
  EXPECT_EQ(ref.window_sig, got.window_sig) << what;
  EXPECT_EQ(ref.detect_patterns, got.detect_patterns) << what;
  EXPECT_EQ(ref.patterns_applied, got.patterns_applied) << what;
  EXPECT_EQ(ref.detected, got.detected) << what;
  EXPECT_EQ(ref.total, got.total) << what;
}

/// No unreaped children: success AND every failure/degradation path must
/// waitpid() the whole fleet.
bool noZombies() {
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  return r == -1 && errno == ECHILD;
}

FailpointAction action(FailpointAction::Kind k, std::uint64_t arg = 0) {
  FailpointAction a;
  a.kind = k;
  a.arg = arg;
  return a;
}

/// Every test starts and ends with a clean registry so armed entries can
/// never leak across tests.
class Resilience : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarmAll(); }
  void TearDown() override { FailpointRegistry::instance().disarmAll(); }
};

// ---------------------------------------------------------------------------
// FailpointRegistry units
// ---------------------------------------------------------------------------

TEST_F(Resilience, RegistryMatchesIndexSeqSkipAndCount) {
  auto& reg = FailpointRegistry::instance();
  // worker 1 only, skip the first matching hit, then fire twice.
  reg.arm("site.a", action(FailpointAction::Kind::kCrash),
          /*match_index=*/1, /*match_seq=*/-1, /*skip=*/1, /*count=*/2);

  EXPECT_FALSE(reg.fire("site.a", {0, 0}).has_value());  // wrong index
  EXPECT_FALSE(reg.fire("site.b", {1, 0}).has_value());  // wrong site
  EXPECT_FALSE(reg.fire("site.a", {1, 0}).has_value());  // consumed by skip
  const auto first = reg.fire("site.a", {1, 1});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, FailpointAction::Kind::kCrash);
  EXPECT_TRUE(reg.fire("site.a", {1, 2}).has_value());
  EXPECT_FALSE(reg.fire("site.a", {1, 3}).has_value());  // spent
  EXPECT_EQ(reg.firedCount("site.a"), 2u);
  EXPECT_EQ(reg.armedCount("site.a"), 0u);

  // seq matching and unlimited count.
  reg.arm("site.c", action(FailpointAction::Kind::kError),
          /*match_index=*/-1, /*match_seq=*/7, /*skip=*/0, /*count=*/-1);
  EXPECT_FALSE(reg.fire("site.c", {0, 6}).has_value());
  EXPECT_TRUE(reg.fire("site.c", {0, 7}).has_value());
  EXPECT_TRUE(reg.fire("site.c", {5, 7}).has_value());
  EXPECT_EQ(reg.armedCount("site.c"), 1u);  // unlimited entries never spend

  reg.disarm("site.c");
  EXPECT_FALSE(reg.fire("site.c", {0, 7}).has_value());
  // site.a's spent entry keeps its tally (and the armed flag) until
  // disarmed; disarmAll is what restores the zero-cost fast path.
  EXPECT_TRUE(failpointsArmed());
  reg.disarmAll();
  EXPECT_FALSE(failpointsArmed());
}

TEST_F(Resilience, SpecGrammarParsesAndMalformedSpecsThrow) {
  auto& reg = FailpointRegistry::instance();
  reg.armFromSpec(
      "process.worker.shard=crash:worker=1:shard=3;"
      "channel.attempt=error:core=2:count=-1;"
      "process.worker.reply=delay:ms=5:jitter=3;"
      "process.request.frame=bitflip:arg=200:skip=2");
  EXPECT_EQ(reg.armedCount("process.worker.shard"), 1u);
  EXPECT_EQ(reg.armedCount("channel.attempt"), 1u);

  EXPECT_FALSE(reg.fire("process.worker.shard", {1, 2}).has_value());
  EXPECT_TRUE(reg.fire("process.worker.shard", {1, 3}).has_value());
  EXPECT_TRUE(reg.fire("channel.attempt", {2, 9}).has_value());
  const auto delay = reg.fire("process.worker.reply", {0, 0});
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(delay->kind, FailpointAction::Kind::kDelay);
  EXPECT_EQ(delay->delay_ms, 5);
  EXPECT_EQ(delay->jitter_ms, 3);

  EXPECT_THROW(reg.armFromSpec("=crash"), std::invalid_argument);
  EXPECT_THROW(reg.armFromSpec("site"), std::invalid_argument);
  EXPECT_THROW(reg.armFromSpec("site=explode"), std::invalid_argument);
  EXPECT_THROW(reg.armFromSpec("site=crash:bogus=1"), std::invalid_argument);
  EXPECT_THROW(reg.armFromSpec("site=crash:worker=abc"),
               std::invalid_argument);
}

TEST_F(Resilience, EnvSpecArmsTheRegistry) {
  ASSERT_EQ(::setenv("COREBIST_FAILPOINTS",
                     "process.worker.shard=crash:worker=0", 1),
            0);
  auto& reg = FailpointRegistry::instance();
  EXPECT_EQ(reg.armFromEnv(), 1);
  EXPECT_EQ(reg.armedCount("process.worker.shard"), 1u);
  reg.disarmAll();
  ASSERT_EQ(::unsetenv("COREBIST_FAILPOINTS"), 0);
  EXPECT_EQ(reg.armFromEnv(), 0);
}

// ---------------------------------------------------------------------------
// ResilientFaultSim: retry convergence and the degradation ladder
// ---------------------------------------------------------------------------

struct ResilientRig {
  Netlist nl;
  FaultUniverse u;
  RandomPatternSource patterns;
  FaultSimOptions opts;
  FaultSimResult ref;

  explicit ResilientRig(std::uint64_t seed)
      : nl(randomComb(seed, 10, 70)),
        u(enumerateStuckAt(nl)),
        patterns(seed ^ 0xBEEF, nl.primaryInputs().size(), 256),
        ref{} {
    opts.cycles = 256;
    opts.prepass_cycles = 0;
    CombFaultSim serial(nl, nl.primaryInputs(), nl.primaryOutputs());
    ref = serial.run(u.faults, patterns, opts);
  }

  [[nodiscard]] ResilientFaultSim make(ResilientFsimOptions ropts) const {
    return ResilientFaultSim(
        CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, ropts);
  }
};

ResilientFsimOptions fastRopts() {
  ResilientFsimOptions r;
  r.num_workers = 2;
  r.shard_faults = 16;
  r.timeout_ms = 2'000;
  r.max_shard_retries = 3;
  r.backoff_base_ms = 1;
  return r;
}

TEST_F(Resilience, UnarmedRunIsByteIdenticalWithCleanLog) {
  const ResilientRig rig(31);
  ResilientFaultSim rsim = rig.make(fastRopts());
  const FaultSimResult r = rsim.run(rig.u.faults, rig.patterns, rig.opts);
  expectSameResult(rig.ref, r, "unarmed resilient vs serial");
  EXPECT_TRUE(rsim.lastLog().clean());
  EXPECT_EQ(rsim.lastLog().final_rung, 0);
  EXPECT_TRUE(noZombies());
}

TEST_F(Resilience, EverySingleFailureScheduleConvergesByteIdentically) {
  const ResilientRig rig(32);
  struct Schedule {
    const char* name;
    const char* site;
    FailpointAction a;
  };
  const std::vector<Schedule> schedules = {
      {"worker crash", "process.worker.shard",
       action(FailpointAction::Kind::kCrash)},
      {"worker hang past watchdog", "process.worker.shard",
       action(FailpointAction::Kind::kHang)},
      {"reply bitflip (checksum)", "process.worker.reply",
       action(FailpointAction::Kind::kBitflip, 211)},
      {"reply truncated", "process.worker.reply",
       action(FailpointAction::Kind::kTruncate, 8)},
      {"request frame corrupted", "process.request.frame",
       action(FailpointAction::Kind::kBitflip, 300)},
  };
  for (const Schedule& s : schedules) {
    SCOPED_TRACE(s.name);
    FailpointRegistry::instance().disarmAll();
    FailpointRegistry::instance().arm(s.site, s.a, /*match_index=*/1);
    ResilientFsimOptions ropts = fastRopts();
    ropts.timeout_ms = 400;  // keeps the hang schedule fast
    ResilientFaultSim rsim = rig.make(ropts);
    const FaultSimResult r = rsim.run(rig.u.faults, rig.patterns, rig.opts);
    expectSameResult(rig.ref, r, s.name);
    const ResilienceLog& log = rsim.lastLog();
    EXPECT_GE(log.retries, 1) << s.name;
    EXPECT_EQ(log.final_rung, 0) << s.name;  // recovered without degrading
    EXPECT_EQ(log.degradations, 0) << s.name;
    EXPECT_TRUE(noZombies()) << s.name;
  }
}

TEST_F(Resilience, RandomizedInjectionSchedulesConvergeByteIdentically) {
  const ResilientRig rig(33);
  const std::vector<std::pair<const char*, FailpointAction>> menu = {
      {"process.worker.shard", action(FailpointAction::Kind::kCrash)},
      {"process.worker.reply", action(FailpointAction::Kind::kBitflip, 187)},
      {"process.worker.reply", action(FailpointAction::Kind::kTruncate, 12)},
      {"process.request.frame", action(FailpointAction::Kind::kBitflip, 260)},
      {"process.request.frame", action(FailpointAction::Kind::kShortWrite)},
  };
  for (const std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    FailpointRegistry::instance().disarmAll();
    const int entries = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < entries; ++e) {
      const auto& [site, a] = menu[rng() % menu.size()];
      FailpointRegistry::instance().arm(
          site, a, /*match_index=*/static_cast<std::int64_t>(rng() % 2),
          /*match_seq=*/-1, /*skip=*/static_cast<int>(rng() % 3));
    }
    ResilientFaultSim rsim = rig.make(fastRopts());
    const FaultSimResult r = rsim.run(rig.u.faults, rig.patterns, rig.opts);
    expectSameResult(rig.ref, r, "randomized schedule");
    EXPECT_EQ(rsim.lastLog().final_rung, 0);
    EXPECT_TRUE(noZombies());
  }
}

TEST_F(Resilience, PersistentWorkerFailureDegradesToThreadedByteIdentically) {
  const ResilientRig rig(34);
  // Every dispatch to every worker crashes: the process rung can never
  // finish a shard, so after the retry budget the supervisor must land the
  // campaign on the threaded rung with an identical result.
  FailpointRegistry::instance().arm("process.worker.shard",
                                    action(FailpointAction::Kind::kCrash),
                                    /*match_index=*/-1, /*match_seq=*/-1,
                                    /*skip=*/0, /*count=*/-1);
  ResilientFsimOptions ropts = fastRopts();
  ropts.max_shard_retries = 2;
  ResilientFaultSim rsim = rig.make(ropts);
  const FaultSimResult r = rsim.run(rig.u.faults, rig.patterns, rig.opts);
  expectSameResult(rig.ref, r, "degraded-to-threaded vs serial");
  const ResilienceLog& log = rsim.lastLog();
  EXPECT_EQ(log.final_rung, 1);
  EXPECT_GE(log.degradations, 1);
  EXPECT_GE(log.retries, 3);  // 1 + max_shard_retries on the losing shard
  EXPECT_TRUE(noZombies());

  // The structured log serializes with stable keys for telemetry.
  const std::string json = log.toJson();
  EXPECT_NE(json.find("\"retries\""), std::string::npos);
  EXPECT_NE(json.find("\"final_rung\":\"threaded\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
}

TEST_F(Resilience, LadderFallsAllTheWayToSerialByteIdentically) {
  const ResilientRig rig(35);
  FailpointRegistry::instance().arm("process.worker.shard",
                                    action(FailpointAction::Kind::kCrash),
                                    /*match_index=*/-1, /*match_seq=*/-1,
                                    /*skip=*/0, /*count=*/-1);
  // The threaded rung is also made to fail (its own failpoint site), so
  // only the serial rung can finish the campaign.
  FailpointRegistry::instance().arm("resilient.rung",
                                    action(FailpointAction::Kind::kError),
                                    /*match_index=*/1);
  ResilientFsimOptions ropts = fastRopts();
  ropts.max_shard_retries = 1;
  ResilientFaultSim rsim = rig.make(ropts);
  const FaultSimResult r = rsim.run(rig.u.faults, rig.patterns, rig.opts);
  expectSameResult(rig.ref, r, "degraded-to-serial vs serial");
  const ResilienceLog& log = rsim.lastLog();
  EXPECT_EQ(log.final_rung, 2);
  EXPECT_GE(log.degradations, 2);
  EXPECT_NE(log.toJson().find("\"final_rung\":\"serial\""),
            std::string::npos);
  EXPECT_TRUE(noZombies());
}

TEST_F(Resilience, DegradeDisabledRethrowsTheUnderlyingProcessError) {
  const ResilientRig rig(36);
  FailpointRegistry::instance().arm("process.worker.shard",
                                    action(FailpointAction::Kind::kCrash),
                                    /*match_index=*/-1, /*match_seq=*/-1,
                                    /*skip=*/0, /*count=*/-1);
  ResilientFsimOptions ropts = fastRopts();
  ropts.max_shard_retries = 1;
  ropts.degrade_on_failure = false;
  ResilientFaultSim rsim = rig.make(ropts);
  try {
    (void)rsim.run(rig.u.faults, rig.patterns, rig.opts);
    FAIL() << "expected ProcessFsimError";
  } catch (const ProcessFsimError& e) {
    EXPECT_EQ(e.reason(), ProcessFsimError::Reason::kWorkerDied);
    EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos);
  }
  // The log survives the throw: the caller can see what was attempted.
  EXPECT_GE(rsim.lastLog().retries, 2);
  EXPECT_EQ(rsim.lastLog().degradations, 0);
  EXPECT_TRUE(noZombies());
}

TEST_F(Resilience, EngineErrorsAreDeterministicAndNeverRetried) {
  const ResilientRig rig(37);
  FaultSimOptions bad = rig.opts;
  bad.misr = MisrSpec{};  // MISR compaction is invalid on the comb kernel
  ResilientFaultSim rsim = rig.make(fastRopts());
  EXPECT_THROW((void)rsim.run(rig.u.faults, rig.patterns, bad),
               std::invalid_argument);
  EXPECT_EQ(rsim.lastLog().retries, 0);  // rejection is not a retry case
  EXPECT_TRUE(noZombies());
}

// ---------------------------------------------------------------------------
// Scheduler quarantine: channel retry, exclusion, fingerprint stability
// ---------------------------------------------------------------------------

Netlist makeToyModule(int twist) {
  Netlist nl("toy" + std::to_string(twist));
  Builder b(nl);
  const Bus x = b.input("x", 12);
  const Bus q = b.state("q", 12);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1 + twist % 3)));
  b.output("y", q);
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

std::unique_ptr<Soc> makeSoc() {
  auto soc = std::make_unique<Soc>("resilience_soc");
  for (int c = 0; c < 6; ++c) {
    auto core = std::make_unique<WrappedCore>("toy" + std::to_string(c));
    core->addModule(makeToyModule(c));
    soc->attachCore(std::move(core));
  }
  soc->core(1).injectDefect(0, 3, GateType::kXnor);  // a real defect rides
  return soc;                                        // along with the chaos
}

TestPlan makePlan() {
  return TestPlan{}.withPatterns(300).withResilience(/*shard_retries=*/2,
                                                     /*backoff_ms=*/0);
}

void expectSameCore(const CoreReport& a, const CoreReport& b) {
  EXPECT_EQ(a.core_index, b.core_index);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.end_test_seen, b.end_test_seen);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.polls, b.polls);
  EXPECT_EQ(a.tap_clocks, b.tap_clocks);
  EXPECT_EQ(a.bist_cycles, b.bist_cycles);
  ASSERT_EQ(a.modules.size(), b.modules.size());
  for (std::size_t m = 0; m < a.modules.size(); ++m) {
    EXPECT_EQ(a.modules[m].signature, b.modules[m].signature);
    EXPECT_EQ(a.modules[m].golden, b.modules[m].golden);
  }
}

TEST_F(Resilience, PersistentChannelFailureQuarantinesOnlyThatCore) {
  auto healthy_soc = makeSoc();
  const SessionReport healthy =
      SocTestScheduler(*healthy_soc).run(makePlan());

  // Core 3's channel fails on every protocol attempt, forever.
  FailpointRegistry::instance().arm("channel.attempt",
                                    action(FailpointAction::Kind::kError),
                                    /*match_index=*/3, /*match_seq=*/-1,
                                    /*skip=*/0, /*count=*/-1);
  auto soc = makeSoc();
  const SessionReport report = SocTestScheduler(*soc).run(makePlan());

  const CoreReport* q = report.core(3);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->verdict, CoreVerdict::kQuarantined);
  EXPECT_FALSE(q->pass());
  EXPECT_EQ(q->channel_failures, 3);  // initial try + 2 reopen retries
  EXPECT_TRUE(q->modules.empty());
  EXPECT_EQ(q->tap_clocks, 0u);  // never conclusively tested: no accounting
  EXPECT_EQ(q->attempts, 0);
  EXPECT_NE(q->summary().find("QUARANTINED"), std::string::npos);

  // Every OTHER core's report slice is field-identical to the healthy run.
  for (const int c : {0, 1, 2, 4, 5}) {
    SCOPED_TRACE("core " + std::to_string(c));
    ASSERT_NE(report.core(c), nullptr);
    ASSERT_NE(healthy.core(c), nullptr);
    expectSameCore(*healthy.core(c), *report.core(c));
  }

  // JSON carries the verdict and the failure count; the deterministic
  // fingerprint excludes channel_failures (an execution artifact).
  EXPECT_NE(report.toJson().find("\"verdict\": \"quarantined\""),
            std::string::npos);
  EXPECT_NE(report.toJson().find("\"channel_failures\": 3"),
            std::string::npos);
  EXPECT_EQ(report.fingerprint().find("channel_failures"), std::string::npos);
}

TEST_F(Resilience, QuarantineFingerprintIsShardingInvariant) {
  FailpointRegistry::instance().arm("channel.attempt",
                                    action(FailpointAction::Kind::kError),
                                    /*match_index=*/3, /*match_seq=*/-1,
                                    /*skip=*/0, /*count=*/-1);
  auto serial_soc = makeSoc();
  const std::string serial_fp =
      SocTestScheduler(*serial_soc).run(makePlan()).fingerprint();
  EXPECT_NE(serial_fp.find("\"verdict\": \"quarantined\""), std::string::npos);
  for (const int threads : {3, 6}) {
    auto soc = makeSoc();
    const SessionReport report =
        SocTestScheduler(*soc).run(makePlan().withThreads(threads));
    EXPECT_EQ(report.fingerprint(), serial_fp) << "threads=" << threads;
  }
}

TEST_F(Resilience, TransientChannelFailuresAreInvisibleInTheFingerprint) {
  auto healthy_soc = makeSoc();
  const SessionReport healthy =
      SocTestScheduler(*healthy_soc).run(makePlan());

  // One failure at the attempt gate and one mid-protocol (poll loop): both
  // recovered by reopening a fresh channel, so the fingerprint — which
  // excludes channel_failures — equals the healthy run byte for byte.
  FailpointRegistry::instance().arm("channel.attempt",
                                    action(FailpointAction::Kind::kError),
                                    /*match_index=*/2);
  FailpointRegistry::instance().arm("channel.poll",
                                    action(FailpointAction::Kind::kError),
                                    /*match_index=*/4);
  auto soc = makeSoc();
  const SessionReport report = SocTestScheduler(*soc).run(makePlan());
  EXPECT_EQ(report.fingerprint(), healthy.fingerprint());
  ASSERT_NE(report.core(2), nullptr);
  EXPECT_EQ(report.core(2)->channel_failures, 1);
  ASSERT_NE(report.core(4), nullptr);
  EXPECT_EQ(report.core(4)->channel_failures, 1);
}

TEST_F(Resilience, DegradationDisabledFailsTheCampaignWithTheChannelError) {
  FailpointRegistry::instance().arm("channel.attempt",
                                    action(FailpointAction::Kind::kError),
                                    /*match_index=*/3, /*match_seq=*/-1,
                                    /*skip=*/0, /*count=*/-1);
  auto soc = makeSoc();
  TestPlan plan = TestPlan{}.withPatterns(300).withResilience(
      /*shard_retries=*/1, /*backoff_ms=*/0, /*degrade=*/false);
  try {
    (void)SocTestScheduler(*soc).run(plan);
    FAIL() << "expected SessionChannelError";
  } catch (const SessionChannelError& e) {
    EXPECT_EQ(e.coreIndex(), 3);
  }
}

TEST_F(Resilience, CoverageOnTheResilientBackendMatchesSerial) {
  auto serial_soc = makeSoc();
  TestPlan serial_plan =
      makePlan().withCoverageTarget(30.0).withCoverageBackend(
          FsimBackend::kSerial);
  const std::string serial_fp =
      SocTestScheduler(*serial_soc).run(serial_plan).fingerprint();
  EXPECT_NE(serial_fp.find("coverage"), std::string::npos);

  auto soc = makeSoc();
  TestPlan plan = makePlan().withCoverageTarget(30.0).withCoverageBackend(
      FsimBackend::kResilient, /*workers=*/2);
  const SessionReport report = SocTestScheduler(*soc).run(plan);
  EXPECT_EQ(report.fingerprint(), serial_fp);
  EXPECT_TRUE(noZombies());
}

// ---------------------------------------------------------------------------
// Chaos entry point: the CI matrix drives this suite via COREBIST_FAILPOINTS
// ---------------------------------------------------------------------------

TEST_F(Resilience, ChaosStyleSpecStillConvergesByteIdentically) {
  // Self-contained stand-in for the CI chaos job: arm the same kind of spec
  // the workflow exports, then require full byte-identity and a clean
  // process table. (The env-driven equivalent is ResilienceChaos below.)
  ASSERT_EQ(::setenv("COREBIST_FAILPOINTS",
                     "process.worker.shard=crash:count=3;"
                     "process.worker.reply=bitflip:arg=300:skip=1:count=2;"
                     "process.request.frame=shortwrite:count=-1",
                     1),
            0);
  EXPECT_EQ(FailpointRegistry::instance().armFromEnv(), 3);
  ASSERT_EQ(::unsetenv("COREBIST_FAILPOINTS"), 0);

  const ResilientRig rig(38);
  ResilientFaultSim rsim = rig.make(fastRopts());
  const FaultSimResult r = rsim.run(rig.u.faults, rig.patterns, rig.opts);
  expectSameResult(rig.ref, r, "env chaos spec vs serial");
  EXPECT_GE(rsim.lastLog().retries, 1);
  EXPECT_TRUE(noZombies());
}

/// The CI chaos matrix drives this suite: each test re-arms whatever
/// COREBIST_FAILPOINTS carries (the base fixture deliberately disarms the
/// registry, so chaos tests must opt back in) and then requires the same
/// invariants as a clean run — byte-identity, completion, no zombies — no
/// matter which injection schedule the job exported. Unset env = the tests
/// double as plain regression runs.
class ResilienceChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::instance().disarmAll();
    armed_ = FailpointRegistry::instance().armFromEnv();
  }
  void TearDown() override { FailpointRegistry::instance().disarmAll(); }
  int armed_ = 0;
};

TEST_F(ResilienceChaos, CampaignConvergesByteIdenticallyUnderEnvSchedule) {
  const ResilientRig rig(77);
  ResilientFsimOptions ropts = fastRopts();
  ropts.timeout_ms = 500;  // hang schedules must resolve inside the job
  ropts.max_shard_retries = 4;
  ResilientFaultSim rsim = rig.make(ropts);
  const FaultSimResult r = rsim.run(rig.u.faults, rig.patterns, rig.opts);
  expectSameResult(rig.ref, r, "env-scheduled campaign vs serial");
  EXPECT_TRUE(noZombies());
}

TEST_F(ResilienceChaos, SocCampaignFingerprintSurvivesEnvSchedule) {
  // Scheduler + kResilient coverage probes under the env schedule: the
  // campaign fingerprint must equal a clean-registry run of the same plan.
  auto clean_soc = makeSoc();
  FailpointRegistry::instance().disarmAll();
  TestPlan plan = makePlan().withCoverageTarget(30.0).withCoverageBackend(
      FsimBackend::kResilient, /*workers=*/2);
  const std::string clean_fp =
      SocTestScheduler(*clean_soc).run(plan).fingerprint();

  EXPECT_EQ(FailpointRegistry::instance().armFromEnv(), armed_);
  auto soc = makeSoc();
  const SessionReport report = SocTestScheduler(*soc).run(plan);
  EXPECT_EQ(report.fingerprint(), clean_fp);
  EXPECT_TRUE(noZombies());
}

}  // namespace
}  // namespace corebist
