// Behavioural-vs-gate-level equivalence for the three LDPC decoder modules.
//
// The behavioural models in ldpc/arch/ are the specification; the structural
// generators in ldpc/gatelevel/ must match them cycle by cycle, output bit
// by output bit, under randomized stimulus (including the control corner
// cases: start/flush/halt collisions, saturations, buffer wraps). This is
// the license for running every DfT experiment on the netlists.
#include <gtest/gtest.h>

#include <random>

#include "ldpc/arch/bit_node.hpp"
#include "ldpc/arch/check_node.hpp"
#include "ldpc/arch/control_unit.hpp"
#include "ldpc/gatelevel.hpp"
#include "sim/seq_sim.hpp"

namespace corebist::ldpc {
namespace {

std::uint64_t applyAndRead(SeqSim& sim, std::uint64_t in_bits) {
  const auto& pis = sim.netlist().primaryInputs();
  for (std::size_t j = 0; j < pis.size(); ++j) {
    sim.comb().set(pis[j], broadcast(((in_bits >> j) & 1u) != 0));
  }
  sim.evalComb();
  const auto& pos = sim.netlist().primaryOutputs();
  std::uint64_t out = 0;
  for (std::size_t j = 0; j < pos.size(); ++j) {
    out |= (sim.comb().get(pos[j]) & 1u) << j;
  }
  return out;
}

TEST(LdpcGate, PortGeometryMatchesPaperTable1) {
  const Netlist bn = buildBitNode();
  EXPECT_EQ(bn.portWidth(true), kBitNodeInputBits);    // 54
  EXPECT_EQ(bn.portWidth(false), kBitNodeOutputBits);  // 55
  const Netlist cn = buildCheckNode();
  EXPECT_EQ(cn.portWidth(true), kCheckNodeInputBits);    // 53
  EXPECT_EQ(cn.portWidth(false), kCheckNodeOutputBits);  // 53
  const Netlist cu = buildControlUnit();
  EXPECT_EQ(cu.portWidth(true), kControlUnitInputBits);    // 45
  EXPECT_EQ(cu.portWidth(false), kControlUnitOutputBits);  // 44
}

class BitNodeEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitNodeEquiv, RandomSweep) {
  const Netlist nl = buildBitNode();
  SeqSim sim(nl);
  sim.reset();
  BitNodeModel model;
  model.reset();
  std::mt19937_64 rng(GetParam());
  for (int cycle = 0; cycle < 600; ++cycle) {
    BitNodeIn in = unpackBitNodeIn(rng());
    if (cycle == 0) in.ctrl |= BnCtrl::kStart;  // deterministic start
    const std::uint64_t bits = packBitNodeIn(in);
    const std::uint64_t hw = applyAndRead(sim, bits);
    const std::uint64_t sw = packBitNodeOut(model.eval(in));
    ASSERT_EQ(hw, sw) << "cycle " << cycle << " seed " << GetParam();
    sim.clockEdge();
    model.tick(in);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitNodeEquiv,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class CheckNodeEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckNodeEquiv, RandomSweep) {
  const Netlist nl = buildCheckNode();
  SeqSim sim(nl);
  sim.reset();
  CheckNodeModel model;
  model.reset();
  std::mt19937_64 rng(GetParam());
  for (int cycle = 0; cycle < 400; ++cycle) {
    CheckNodeIn in = unpackCheckNodeIn(rng());
    if (cycle == 0) in.ctrl |= CnCtrl::kStart;
    const std::uint64_t bits = packCheckNodeIn(in);
    const std::uint64_t hw = applyAndRead(sim, bits);
    const std::uint64_t sw = packCheckNodeOut(model.eval(in));
    ASSERT_EQ(hw, sw) << "cycle " << cycle << " seed " << GetParam();
    sim.clockEdge();
    model.tick(in);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckNodeEquiv,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class ControlUnitEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControlUnitEquiv, RandomSweep) {
  const Netlist nl = buildControlUnit();
  SeqSim sim(nl);
  sim.reset();
  ControlUnitModel model;
  model.reset();
  std::mt19937_64 rng(GetParam());
  for (int cycle = 0; cycle < 1500; ++cycle) {
    ControlUnitIn in = unpackControlUnitIn(rng());
    // Bias toward realistic operation: mostly stepping, occasional control.
    in.step_en = (rng() % 8) != 0 ? 1 : 0;
    in.start = cycle == 0 || (rng() % 97) == 0 ? 1 : 0;
    in.halt = (rng() % 131) == 0 ? 1 : 0;
    in.mem_ready = (rng() % 5) != 0 ? 1 : 0;
    const std::uint64_t bits = packControlUnitIn(in);
    const std::uint64_t hw = applyAndRead(sim, bits);
    const std::uint64_t sw = packControlUnitOut(model.eval(in));
    ASSERT_EQ(hw, sw) << "cycle " << cycle << " seed " << GetParam();
    sim.clockEdge();
    model.tick(in);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlUnitEquiv,
                         ::testing::Values(7, 14, 28, 56, 112));

TEST(LdpcGate, BitNodeDirectedSaturation) {
  // Drive the accumulator into both saturation rails and check the sticky
  // overflow flag and hard decision against the model.
  const Netlist nl = buildBitNode();
  SeqSim sim(nl);
  sim.reset();
  BitNodeModel model;
  model.reset();
  BitNodeIn in;
  in.ch_llr = 100;
  in.ctrl = BnCtrl::kStart | BnCtrl::kLoadLlr;
  auto stepBoth = [&](const BitNodeIn& i) {
    const std::uint64_t hw = applyAndRead(sim, packBitNodeIn(i));
    const std::uint64_t sw = packBitNodeOut(model.eval(i));
    ASSERT_EQ(hw, sw);
    sim.clockEdge();
    model.tick(i);
  };
  stepBoth(in);
  in.ctrl = BnCtrl::kAccEn;
  in.cn_msg = 127;
  in.path_sel = 0;
  for (int i = 0; i < 40; ++i) stepBoth(in);  // ride the +rail
  EXPECT_EQ(model.state().acc, 2047);
  in.cn_msg = -128;
  for (int i = 0; i < 80; ++i) stepBoth(in);  // cross to the -rail
  EXPECT_EQ(model.state().acc, -2048);
  EXPECT_TRUE((model.state().flags & 1u) != 0);  // sticky saturation flag
}

TEST(LdpcGate, CheckNodeDirectedMinSum) {
  // Load known magnitudes, run one compute, and verify min1/min2/argmin.
  const Netlist nl = buildCheckNode();
  SeqSim sim(nl);
  sim.reset();
  CheckNodeModel model;
  model.reset();
  auto stepBoth = [&](const CheckNodeIn& i) {
    const std::uint64_t hw = applyAndRead(sim, packCheckNodeIn(i));
    const std::uint64_t sw = packCheckNodeOut(model.eval(i));
    ASSERT_EQ(hw, sw);
    sim.clockEdge();
    model.tick(i);
  };
  CheckNodeIn in;
  in.ctrl = CnCtrl::kStart;
  stepBoth(in);
  const int mags[6] = {50, 12, 70, 12, 90, 33};
  for (int e = 0; e < 6; ++e) {
    in = CheckNodeIn{};
    in.ctrl = CnCtrl::kLoad;
    in.edge_idx = static_cast<unsigned>(e);
    in.bn_msg = (e % 2 != 0) ? -mags[e] : mags[e];
    stepBoth(in);
  }
  // Point the window pipeline at base 0, then fold it in.
  in = CheckNodeIn{};
  in.edge_idx = 0;
  stepBoth(in);
  in = CheckNodeIn{};
  in.ctrl = CnCtrl::kCompute;
  stepBoth(in);
  EXPECT_EQ(model.state().min1, 0u);  // untouched entries are zero
  // Flush, reload, recompute: now real magnitudes dominate.
  in = CheckNodeIn{};
  in.ctrl = CnCtrl::kFlush;
  stepBoth(in);
  in = CheckNodeIn{};
  in.ctrl = CnCtrl::kStart;
  stepBoth(in);
  for (int e = 0; e < 6; ++e) {
    in = CheckNodeIn{};
    in.ctrl = CnCtrl::kLoad;
    in.edge_idx = static_cast<unsigned>(e);
    in.path_sel = 0;
    in.bn_msg = (e % 2 != 0) ? -mags[e] : mags[e];
    stepBoth(in);
  }
  // Fill the rest of the buffer with large values so windows see them.
  for (int e = 6; e < 64; ++e) {
    in = CheckNodeIn{};
    in.ctrl = CnCtrl::kLoad;
    in.edge_idx = static_cast<unsigned>(e);
    in.bn_msg = 127;
    stepBoth(in);
  }
  for (unsigned basee : {0u, 10u, 20u, 30u, 40u, 54u}) {
    in = CheckNodeIn{};
    in.edge_idx = basee;  // pointer cycle loads the window pipeline
    stepBoth(in);
    in = CheckNodeIn{};
    in.ctrl = CnCtrl::kCompute;
    stepBoth(in);
  }
  EXPECT_EQ(model.state().min1, 12u);
  EXPECT_EQ(model.state().min2, 12u);   // duplicate minimum
  EXPECT_EQ(model.state().argmin, 1u);  // leftmost of the two 12s
}

}  // namespace
}  // namespace corebist::ldpc
