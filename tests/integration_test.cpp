// System-level integration: the complete case study through every layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "bist/engine_hw.hpp"
#include "core/scheduler.hpp"
#include "core/soc.hpp"
#include "ldpc/gatelevel.hpp"
#include "p1500/wrapper_hw.hpp"
#include "scan/scan.hpp"
#include "sim/seq_sim.hpp"
#include "synth/area.hpp"
#include "synth/sta.hpp"

namespace corebist {
namespace {

TEST(Integration, LdpcBitNodeFullSessionWithDefectLocalization) {
  Soc soc;
  auto core = std::make_unique<WrappedCore>("ldpc_bn");
  const Netlist bn = ldpc::buildBitNode();
  core->addModule(bn);
  const int idx = soc.attachCore(std::move(core));
  SocTestScheduler scheduler(soc);
  const CorePlan entry{.core_index = idx, .patterns = 400};

  const CoreReport healthy = scheduler.testCore(entry);
  EXPECT_EQ(healthy.verdict, CoreVerdict::kPass) << healthy.summary();

  // Break an AND gate somewhere in the accumulator datapath.
  GateId victim = 0;
  for (GateId g = 50; g < bn.numGates(); ++g) {
    if (bn.gates()[g].type == GateType::kAnd) {
      victim = g;
      break;
    }
  }
  soc.core(idx).injectDefect(0, victim, GateType::kXor);
  const CoreReport defective = scheduler.testCore(entry);
  EXPECT_EQ(defective.verdict, CoreVerdict::kSignatureMismatch)
      << defective.summary();
  EXPECT_TRUE(defective.end_test_seen);
}

TEST(Integration, WrapperVariantsPreserveFunction) {
  // The boundary-wrapped module in functional mode behaves exactly like the
  // bare module (the wrapper is transparent when test_mode = 0).
  const Netlist cu = ldpc::buildControlUnit();
  const Netlist wrapped = buildBoundaryWrappedModule(cu);
  SeqSim bare(cu);
  SeqSim wrap(wrapped);
  bare.reset();
  wrap.reset();
  const Bus tm = wrapped.findPort("wrp_test_mode")->bits;
  std::mt19937_64 rng(404);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const std::uint64_t w = rng();
    for (std::size_t j = 0; j < cu.primaryInputs().size(); ++j) {
      bare.comb().set(cu.primaryInputs()[j], broadcast(((w >> j) & 1u) != 0));
    }
    wrap.comb().setBusBroadcast(tm, 0);
    for (const PortBus& p : cu.ports()) {
      if (!p.is_input) continue;
      wrap.comb().setBusBroadcast(wrapped.findPort(p.name)->bits, 0);
    }
    // Drive by port to keep bit order identical.
    for (const PortBus& p : cu.ports()) {
      if (!p.is_input) continue;
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < p.bits.size(); ++i) {
        // Find the PI index of this bit in the bare module.
        for (std::size_t j = 0; j < cu.primaryInputs().size(); ++j) {
          if (cu.primaryInputs()[j] == p.bits[i]) {
            v |= ((w >> j) & 1u) << i;
            break;
          }
        }
      }
      wrap.comb().setBusBroadcast(wrapped.findPort(p.name)->bits, v);
    }
    bare.evalComb();
    wrap.evalComb();
    for (const PortBus& p : cu.ports()) {
      if (p.is_input) continue;
      std::uint64_t vb = 0;
      for (std::size_t i = 0; i < p.bits.size(); ++i) {
        vb |= (bare.comb().get(p.bits[i]) & 1u) << i;
      }
      EXPECT_EQ(wrap.comb().getBusLane(wrapped.findPort(p.name)->bits, 0), vb)
          << p.name << " cycle " << cycle;
    }
    bare.clockEdge();
    wrap.clockEdge();
  }
}

TEST(Integration, ScannedModuleFunctionalModeMatchesOriginal) {
  const Netlist cu = ldpc::buildControlUnit();
  const Netlist scanned = buildScannedModule(cu, {14, 28});
  SeqSim bare(cu);
  SeqSim scan(scanned);
  bare.reset();
  scan.reset();
  std::mt19937_64 rng(7);
  scan.comb().setBusBroadcast(scanned.findPort("scan_en")->bits, 0);
  scan.comb().setBusBroadcast(scanned.findPort("scan_in_0")->bits, 0);
  scan.comb().setBusBroadcast(scanned.findPort("scan_in_1")->bits, 0);
  for (int cycle = 0; cycle < 300; ++cycle) {
    const std::uint64_t w = rng();
    for (std::size_t j = 0; j < cu.primaryInputs().size(); ++j) {
      bare.comb().set(cu.primaryInputs()[j], broadcast(((w >> j) & 1u) != 0));
      scan.comb().set(scanned.primaryInputs()[j + 3],  // after scan pins
                      broadcast(((w >> j) & 1u) != 0));
    }
    bare.evalComb();
    scan.evalComb();
    bare.clockEdge();
    scan.clockEdge();
  }
  // Compare all original POs after the run.
  for (std::size_t i = 0; i < cu.primaryOutputs().size(); ++i) {
    bare.evalComb();
    scan.evalComb();
    EXPECT_EQ(scan.comb().get(scanned.primaryOutputs()[i]) & 1u,
              bare.comb().get(cu.primaryOutputs()[i]) & 1u);
  }
}

TEST(Integration, AreaAndTimingOfFullCaseStudyAreSane) {
  const TechLib lib = TechLib::generic130nm();
  const Netlist bn = ldpc::buildBitNode();
  const Netlist cn = ldpc::buildCheckNode();
  const Netlist cu = ldpc::buildControlUnit();
  const double core_area = reportArea(bn, lib).total_um2 +
                           reportArea(cn, lib).total_um2 +
                           reportArea(cu, lib).total_um2;
  // Within a factor 1.25 of the paper's 165,818 um^2.
  EXPECT_GT(core_area, 165818.0 / 1.25);
  EXPECT_LT(core_area, 165818.0 * 1.25);
  // The slowest module sets the core clock near the paper's 438.6 MHz.
  const double fmax = std::min({analyzeTiming(bn, lib).fmax_mhz,
                                analyzeTiming(cn, lib).fmax_mhz,
                                analyzeTiming(cu, lib).fmax_mhz});
  EXPECT_GT(fmax, 438.6 * 0.8);
  EXPECT_LT(fmax, 438.6 * 1.2);
}

TEST(Integration, EngineHardwareAreaBelowCoreArea) {
  const TechLib lib = TechLib::generic130nm();
  BistEngine engine;
  engine.attachModule(ldpc::buildBitNode());
  engine.attachModule(ldpc::buildControlUnit());
  const Netlist hw = buildBistEngineHw(engine);
  const Netlist wrap = buildWrapperHw(24, 25);
  const double dft = reportArea(hw, lib).total_um2 +
                     reportArea(wrap, lib).total_um2;
  const double core = reportArea(engine.module(0), lib).total_um2 +
                      reportArea(engine.module(1), lib).total_um2;
  // DfT logic is a modest fraction of even this 2-module core.
  EXPECT_LT(dft, core * 1.5);
  EXPECT_GT(dft, core * 0.05);
}

}  // namespace
}  // namespace corebist
