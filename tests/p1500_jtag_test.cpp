// P1500 wrapper, 1149.1 TAP, TAM and the complete bit-banged test session.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "core/soc.hpp"
#include "core/wrapped_core.hpp"
#include "jtag/driver.hpp"
#include "jtag/tap.hpp"
#include "ldpc/gatelevel.hpp"
#include "netlist/builder.hpp"
#include "p1500/wrapper.hpp"
#include "tam/tam.hpp"

namespace corebist {
namespace {

TEST(TapFsm, ResetFromAnywhereInFiveTmsOnes) {
  for (int s = 0; s < 16; ++s) {
    TapState st = static_cast<TapState>(s);
    for (int i = 0; i < 5; ++i) st = tapNextState(st, true);
    EXPECT_EQ(st, TapState::kTestLogicReset) << "from state " << s;
  }
}

TEST(TapFsm, CanonicalDrPath) {
  TapState s = TapState::kRunTestIdle;
  s = tapNextState(s, true);   // Select-DR
  EXPECT_EQ(s, TapState::kSelectDrScan);
  s = tapNextState(s, false);  // Capture-DR
  EXPECT_EQ(s, TapState::kCaptureDr);
  s = tapNextState(s, false);  // Shift-DR
  EXPECT_EQ(s, TapState::kShiftDr);
  s = tapNextState(s, false);  // stays
  EXPECT_EQ(s, TapState::kShiftDr);
  s = tapNextState(s, true);  // Exit1
  s = tapNextState(s, true);  // Update
  EXPECT_EQ(s, TapState::kUpdateDr);
  s = tapNextState(s, false);
  EXPECT_EQ(s, TapState::kRunTestIdle);
}

TEST(Tap, IdcodeReadAfterReset) {
  TapController tap(4, 0xDEADBEEF);
  TapDriver driver(tap);
  driver.reset();
  // After reset the IDCODE instruction is selected; read 32 bits.
  std::uint64_t id = 0;
  const auto out = driver.shiftDr(0, 32);
  id = out;
  EXPECT_EQ(id, 0xDEADBEEFu);
}

TEST(Tap, BypassIsOneBit) {
  TapController tap(4);
  TapDriver driver(tap);
  driver.reset();
  driver.shiftIr(0xF, 4);  // BYPASS
  // A walking one through bypass comes back delayed by exactly one bit.
  const std::uint64_t out = driver.shiftDr(0b1011001, 7);
  EXPECT_EQ(out & 0x7Fu, 0b0110010u);
}

TEST(Tap, IrShiftsOutCapturePattern) {
  TapController tap(4);
  TapDriver driver(tap);
  driver.reset();
  const std::uint64_t captured = driver.shiftIr(0x2, 4);
  EXPECT_EQ(captured & 0xFu, 0b0001u);  // standard 01 capture
}

TEST(P1500, WirSelectsRegisters) {
  P1500Wrapper::Hooks hooks;
  P1500Wrapper w(10, hooks);
  EXPECT_EQ(w.instruction(), WirInstruction::kWsBypass);
  EXPECT_EQ(w.selectedLength(false), 1);
  EXPECT_EQ(w.selectedLength(true), P1500Wrapper::kWirBits);

  // Shift WS_CDR (3) into the WIR and update.
  const unsigned instr = 3;
  for (int i = 0; i < P1500Wrapper::kWirBits; ++i) {
    w.cycle(WscSignals{true, false, true, false}, ((instr >> i) & 1u) != 0);
  }
  w.cycle(WscSignals{true, false, false, true}, false);
  EXPECT_EQ(w.instruction(), WirInstruction::kWsCdr);
  EXPECT_EQ(w.selectedLength(false), P1500Wrapper::kWcdrBits);
}

TEST(P1500, WcdrDeliversCommand) {
  BistCommand got_cmd = BistCommand::kNop;
  std::uint16_t got_data = 0;
  P1500Wrapper::Hooks hooks;
  hooks.command = [&](BistCommand c, std::uint16_t d) {
    got_cmd = c;
    got_data = d;
  };
  P1500Wrapper w(8, std::move(hooks));
  // WIR <- WS_CDR.
  for (int i = 0; i < 3; ++i) {
    w.cycle(WscSignals{true, false, true, false}, ((3u >> i) & 1u) != 0);
  }
  w.cycle(WscSignals{true, false, false, true}, false);
  // WCDR <- {data=0x0ABC, cmd=kLoadCount(2)} and update.
  const std::uint32_t word = (0x0ABCu << 3) | 2u;
  for (int i = 0; i < P1500Wrapper::kWcdrBits; ++i) {
    w.cycle(WscSignals{false, false, true, false}, ((word >> i) & 1u) != 0);
  }
  w.cycle(WscSignals{false, false, false, true}, false);
  EXPECT_EQ(got_cmd, BistCommand::kLoadCount);
  EXPECT_EQ(got_data, 0x0ABCu);
}

TEST(P1500, WdrCapturesAndShiftsStatus) {
  P1500Wrapper::Hooks hooks;
  hooks.read_data = [] { return 0xBEEFu; };
  P1500Wrapper w(8, std::move(hooks));
  for (int i = 0; i < 3; ++i) {
    w.cycle(WscSignals{true, false, true, false}, ((4u >> i) & 1u) != 0);
  }
  w.cycle(WscSignals{true, false, false, true}, false);
  w.cycle(WscSignals{false, true, false, false}, false);  // capture
  std::uint32_t out = 0;
  for (int i = 0; i < P1500Wrapper::kWdrBits; ++i) {
    if (w.cycle(WscSignals{false, false, true, false}, false)) out |= 1u << i;
  }
  EXPECT_EQ(out, 0xBEEFu);
}

TEST(P1500, ResetReturnsToBypass) {
  P1500Wrapper::Hooks hooks;
  P1500Wrapper w(4, hooks);
  const unsigned instr = 2;  // WS_INTEST
  for (int i = 0; i < 3; ++i) {
    w.cycle(WscSignals{true, false, true, false}, ((instr >> i) & 1u) != 0);
  }
  w.cycle(WscSignals{true, false, false, true}, false);
  EXPECT_EQ(w.instruction(), WirInstruction::kWsIntest);
  w.reset();
  EXPECT_EQ(w.instruction(), WirInstruction::kWsBypass);
}

TEST(P1500, ChildInstructionsWithoutChildrenActAsBypass) {
  // All eight 3-bit codes are defined now that 5..7 address the child
  // chain; on a leaf wrapper the child instructions degrade to the 1-bit
  // bypass, so a scan can never reach logic that is not there.
  P1500Wrapper::Hooks hooks;
  P1500Wrapper w(4, hooks);
  for (int i = 0; i < 3; ++i) {
    w.cycle(WscSignals{true, false, true, false}, true);  // 0b111 = 7
  }
  w.cycle(WscSignals{true, false, false, true}, false);
  EXPECT_EQ(w.instruction(), WirInstruction::kWsChildDr);
  EXPECT_EQ(w.selectedChild(), nullptr);
  EXPECT_EQ(w.selectedLength(false), 1);
  // A walking bit through the degraded path behaves like WBY.
  EXPECT_FALSE(w.cycle(WscSignals{false, false, true, false}, true));
  EXPECT_TRUE(w.cycle(WscSignals{false, false, true, false}, false));
}

TEST(P1500, ChildChainRoutesScansToNestedWrappers) {
  // Parent -> child -> grandchild: WS_CHILD_SEL latches the slot,
  // WS_CHILD_WIR scans the child's WIR, WS_CHILD_DR reaches whatever the
  // child's WIR selects — recursively.
  BistCommand got_cmd = BistCommand::kNop;
  std::uint16_t got_data = 0;
  P1500Wrapper::Hooks leaf_hooks;
  leaf_hooks.command = [&](BistCommand c, std::uint16_t d) {
    got_cmd = c;
    got_data = d;
  };
  P1500Wrapper parent(4, {});
  P1500Wrapper child(4, {});
  P1500Wrapper grandchild(4, std::move(leaf_hooks));
  EXPECT_EQ(parent.attachChild(&child), 0);
  EXPECT_EQ(child.attachChild(&grandchild), 0);

  auto scanWir = [](P1500Wrapper& w, unsigned instr) {
    for (int i = 0; i < P1500Wrapper::kWirBits; ++i) {
      w.cycle(WscSignals{true, false, true, false}, ((instr >> i) & 1u) != 0);
    }
    w.cycle(WscSignals{true, false, false, true}, false);
  };
  auto scanDr = [](P1500Wrapper& w, std::uint64_t word, int bits) {
    for (int i = 0; i < bits; ++i) {
      w.cycle(WscSignals{false, false, true, false}, ((word >> i) & 1u) != 0);
    }
    w.cycle(WscSignals{false, false, false, true}, false);
  };

  // parent.childSel <- 0, then route parent's DR to the child's WIR.
  scanWir(parent, 5);  // WS_CHILD_SEL
  scanDr(parent, 0, P1500Wrapper::kChildSelBits);
  EXPECT_EQ(parent.selectedChild(), &child);
  scanWir(parent, 6);  // WS_CHILD_WIR: parent's DR = child's WIR
  scanDr(parent, 5, P1500Wrapper::kWirBits);  // child.WIR <- WS_CHILD_SEL
  EXPECT_EQ(child.instruction(), WirInstruction::kWsChildSel);
  scanWir(parent, 7);  // WS_CHILD_DR: parent's DR = child's selected DR
  scanDr(parent, 0, P1500Wrapper::kChildSelBits);  // child.childSel <- 0
  EXPECT_EQ(child.selectedChild(), &grandchild);
  // Route the grandchild's WCDR: child forwards WIR scans, then DR scans.
  scanWir(parent, 6);
  scanDr(parent, 6, P1500Wrapper::kWirBits);  // child.WIR <- WS_CHILD_WIR
  scanWir(parent, 7);
  scanDr(parent, 3, P1500Wrapper::kWirBits);  // grandchild.WIR <- WS_CDR
  EXPECT_EQ(grandchild.instruction(), WirInstruction::kWsCdr);
  scanWir(parent, 6);
  scanDr(parent, 7, P1500Wrapper::kWirBits);  // child.WIR <- WS_CHILD_DR
  scanWir(parent, 7);
  EXPECT_EQ(parent.selectedLength(false), P1500Wrapper::kWcdrBits);
  const std::uint32_t word = (0x0123u << 3) | 2u;  // kLoadCount(2)
  scanDr(parent, word, P1500Wrapper::kWcdrBits);
  EXPECT_EQ(got_cmd, BistCommand::kLoadCount);
  EXPECT_EQ(got_data, 0x0123u);
}

TEST(P1500, ChildChainRejectsCyclesAndDuplicates) {
  P1500Wrapper a(4, {});
  P1500Wrapper b(4, {});
  P1500Wrapper c(4, {});
  a.attachChild(&b);
  b.attachChild(&c);
  EXPECT_THROW(a.attachChild(&a), std::invalid_argument);  // self
  EXPECT_THROW(a.attachChild(&b), std::invalid_argument);  // duplicate
  EXPECT_THROW(a.attachChild(&c), std::invalid_argument);  // already nested
  EXPECT_THROW(c.attachChild(&a), std::invalid_argument);  // cycle
  EXPECT_THROW(b.attachChild(nullptr), std::invalid_argument);
}

TEST(Tam, NoSystemTicksLeakDuringCoreSelection) {
  // The TAP passes through Run-Test/Idle on the way into the TAM_SELECT
  // DR scan, while the previous selection is still latched. That clock
  // must not reach any core: a scheduler shard selecting its core would
  // otherwise tick a core another shard owns.
  TapController tap(4);
  Tam tam(tap);
  P1500Wrapper::Hooks hooks;
  P1500Wrapper w0(4, hooks);
  P1500Wrapper w1(4, hooks);
  int ticks0 = 0;
  int ticks1 = 0;
  tam.attach(&w0, [&] { ++ticks0; });
  tam.attach(&w1, [&] { ++ticks1; });

  TapDriver driver(tap);
  driver.reset();
  EXPECT_EQ(tam.selectedCore(), -1);  // nothing selected until an update
  driver.shiftIr(Tam::kIrSelect, 4);
  driver.shiftDr(1, Tam::kSelectBits);
  EXPECT_EQ(tam.selectedCore(), 1);
  EXPECT_EQ(ticks0, 0);  // selection itself clocks no core
  EXPECT_EQ(ticks1, 0);
  driver.shiftIr(Tam::kIrWdrScan, 4);
  driver.runIdle(5);
  EXPECT_EQ(ticks0, 0);
  EXPECT_EQ(ticks1, 5);  // idle under a wrapper instruction, selected only
}

/// A tiny self-checking core for fast session tests: XOR tree module.
Netlist makeToyModule() {
  Netlist nl("toy");
  Builder b(nl);
  const Bus x = b.input("x", 12);
  const Bus q = b.state("q", 12);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1)));
  b.output("y", q);
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

TEST(SocSession, FullBistSessionPassesOnHealthyCore) {
  Soc soc;
  auto core = std::make_unique<WrappedCore>("toy");
  core->addModule(makeToyModule());
  const int idx = soc.attachCore(std::move(core));
  SocTestScheduler scheduler(soc);
  const CoreReport report =
      scheduler.testCore(CorePlan{.core_index = idx, .patterns = 300});
  EXPECT_TRUE(report.end_test_seen);
  EXPECT_EQ(report.verdict, CoreVerdict::kPass) << report.summary();
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.attempts, 1);
  ASSERT_EQ(report.modules.size(), 1u);
  EXPECT_EQ(report.modules[0].signature, report.modules[0].golden);
  EXPECT_GT(report.tap_clocks, 300u);
}

TEST(SocSession, DefectiveCoreFailsAndHealedCorePasses) {
  Soc soc;
  auto core = std::make_unique<WrappedCore>("toy");
  core->addModule(makeToyModule());
  const int idx = soc.attachCore(std::move(core));
  soc.core(idx).injectDefect(0, 3, GateType::kXnor);
  SocTestScheduler scheduler(soc);
  const CoreReport bad =
      scheduler.testCore(CorePlan{.core_index = idx, .patterns = 300});
  EXPECT_EQ(bad.verdict, CoreVerdict::kSignatureMismatch) << bad.summary();
  EXPECT_TRUE(bad.end_test_seen);  // a mismatch is NOT a timeout
  soc.core(idx).healModule(0);
  const CoreReport good =
      scheduler.testCore(CorePlan{.core_index = idx, .patterns = 300});
  EXPECT_EQ(good.verdict, CoreVerdict::kPass) << good.summary();
}

TEST(SocSession, MultiCoreSelectionIsIndependent) {
  Soc soc;
  auto c0 = std::make_unique<WrappedCore>("core0");
  c0->addModule(makeToyModule());
  auto c1 = std::make_unique<WrappedCore>("core1");
  c1->addModule(makeToyModule());
  const int i0 = soc.attachCore(std::move(c0));
  const int i1 = soc.attachCore(std::move(c1));
  soc.core(i1).injectDefect(0, 5, GateType::kNand);
  SocTestScheduler scheduler(soc);
  const SessionReport report = scheduler.run(TestPlan{}.withPatterns(200));
  ASSERT_EQ(report.cores.size(), 2u);
  EXPECT_TRUE(report.core(i0)->pass());
  EXPECT_FALSE(report.core(i1)->pass());
  EXPECT_FALSE(report.pass());
  EXPECT_EQ(report.passCount(), 1);
  EXPECT_EQ(report.total_tap_clocks,
            report.cores[0].tap_clocks + report.cores[1].tap_clocks);
}

TEST(SocSession, LdpcControlUnitEndToEnd) {
  // End-to-end through the real CONTROL_UNIT netlist (42 flops, Table 1),
  // driven through the legacy SocTestSession shim so the compatibility
  // surface stays exercised.
  Soc soc;
  auto core = std::make_unique<WrappedCore>("ldpc_cu");
  core->addModule(ldpc::buildControlUnit());
  const int idx = soc.attachCore(std::move(core));
  SocTestSession session(soc);
  const CoreTestReport report = session.testCore(idx, 512);
  EXPECT_TRUE(report.pass) << report.summary();
}

}  // namespace
}  // namespace corebist
