// Static analyzer: structural lint (seeded-defect detection with witness
// replay), SCOAP golden values, observation-aware fault collapsing proven
// byte-identical by full simulation, SCOAP-guided PODEM coverage identity
// and the shared packed-stimulus hazard guards.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/collapse.hpp"
#include "analyze/hazards.hpp"
#include "analyze/lint.hpp"
#include "analyze/scoap.hpp"
#include "atpg/atpg.hpp"
#include "atpg/podem.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "netlist/builder.hpp"

namespace corebist {
namespace {

/// Random combinational DAG (same idiom as the fault-sim suites): every
/// gate reads earlier pool nets, so the clean netlist is loop-free by
/// construction and defects have to be injected by surgery.
Netlist randomComb(std::uint64_t seed, int width, int gates) {
  Netlist nl("rnd" + std::to_string(seed));
  Builder b(nl);
  std::mt19937_64 rng(seed);
  const Bus x = b.input("x", width);
  std::vector<NetId> pool(x.begin(), x.end());
  for (int i = 0; i < gates; ++i) {
    const NetId a = pool[rng() % pool.size()];
    const NetId c = pool[rng() % pool.size()];
    const GateType t = static_cast<GateType>(2 + rng() % 9);
    NetId o;
    if (t == GateType::kBuf || t == GateType::kNot) {
      o = b.g1(t, a);
    } else if (t == GateType::kMux2) {
      o = b.mux(a, c, pool[rng() % pool.size()]);
    } else {
      o = b.g2(t, a, c);
    }
    pool.push_back(o);
  }
  const std::size_t nout = std::min<std::size_t>(8, pool.size());
  b.output("y", Bus(pool.end() - static_cast<std::ptrdiff_t>(nout),
                    pool.end()));
  nl.validate();
  return nl;
}

/// Map net -> driving gate, built independently of the analyzer so witness
/// replay does not trust the code under test.
std::vector<GateId> driverMap(const Netlist& nl) {
  std::vector<GateId> drv(nl.numNets(), static_cast<GateId>(-1));
  for (GateId g = 0; g < nl.gates().size(); ++g) {
    drv[nl.gates()[g].out] = g;
  }
  return drv;
}

/// True when `from` is one of the inputs of the gate driving `to`.
bool feedsGateDriving(const Netlist& nl, const std::vector<GateId>& drv,
                      NetId from, NetId to) {
  const GateId g = drv[to];
  if (g == static_cast<GateId>(-1)) return false;
  const Gate& gate = nl.gates()[g];
  for (int p = 0; p < gate.nin; ++p) {
    if (gate.in[p] == from) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Structural lint: seeded defects
// ---------------------------------------------------------------------------

TEST(AnalyzeLint, CleanRandomNetlistsHaveNoErrors) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist nl = randomComb(seed, 10, 30);
    const LintReport rep = lintNetlist(nl);
    EXPECT_EQ(rep.countOf(Severity::kError), 0u) << rep.summary();
    EXPECT_EQ(rep.netlist, nl.name());
  }
}

TEST(AnalyzeLint, InjectedCombLoopFiresWithReplayableWitness) {
  // Hand-built two-gate loop: rebind the AND's second input onto the OR
  // that consumes the AND, so a <-> c form a cycle.
  Netlist nl("loop2");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  const NetId a = b.and2(x[0], x[1]);
  const NetId c = b.or2(a, x[0]);
  b.output("y", Bus{b.not1(c)});
  nl.validate();
  nl.rebindGateInput(/*g=*/0, /*pin=*/1, c);

  const LintReport rep = lintNetlist(nl);
  const auto loops = rep.ofRule(rules::kCombLoop);
  ASSERT_EQ(loops.size(), 1u) << rep.summary();
  EXPECT_EQ(loops[0]->severity, Severity::kError);
  const std::vector<NetId>& w = loops[0]->witness;
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(std::set<NetId>(w.begin(), w.end()), (std::set<NetId>{a, c}));
  // Witness contract: witness[i] feeds the gate driving witness[i+1],
  // cyclically.
  const auto drv = driverMap(nl);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_TRUE(feedsGateDriving(nl, drv, w[i], w[(i + 1) % w.size()]))
        << "witness edge " << i << " does not replay";
  }
  // The loop is exactly the defect SCOAP refuses to level through.
  EXPECT_THROW((void)computeScoap(nl, nl.primaryOutputs()), std::logic_error);
}

TEST(AnalyzeLint, RandomizedSelfLoopAlwaysCaught) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl = randomComb(seed, 8, 20);
    std::mt19937_64 rng(seed ^ 0xabcdu);
    const GateId g = static_cast<GateId>(rng() % nl.gates().size());
    nl.rebindGateInput(g, 0, nl.gates()[g].out);

    const LintReport rep = lintNetlist(nl);
    const auto loops = rep.ofRule(rules::kCombLoop);
    ASSERT_FALSE(loops.empty()) << "seed " << seed;
    bool witnessed = false;
    const auto drv = driverMap(nl);
    for (const Diagnostic* d : loops) {
      const std::vector<NetId>& w = d->witness;
      ASSERT_FALSE(w.empty());
      for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_TRUE(feedsGateDriving(nl, drv, w[i], w[(i + 1) % w.size()]));
      }
      witnessed |= std::find(w.begin(), w.end(), nl.gates()[g].out) != w.end();
    }
    EXPECT_TRUE(witnessed) << "no reported cycle passes through the defect";
  }
}

TEST(AnalyzeLint, StrippedDriverReportsUndrivenNetWithReaderWitness) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl = randomComb(seed, 8, 20);
    const GateId g = static_cast<GateId>(nl.gates().size() - 1);
    const NetId reader_out = nl.gates()[g].out;
    const NetId floating = nl.newNet();
    nl.rebindGateInput(g, 0, floating);

    const LintReport rep = lintNetlist(nl);
    const auto diags = rep.ofRule(rules::kUndrivenNet);
    ASSERT_FALSE(diags.empty()) << "seed " << seed;
    bool found = false;
    for (const Diagnostic* d : diags) {
      if (d->nets == std::vector<NetId>{floating}) {
        EXPECT_EQ(d->severity, Severity::kError);
        EXPECT_TRUE(std::find(d->witness.begin(), d->witness.end(),
                              reader_out) != d->witness.end())
            << "witness should name the reading gate's output";
        found = true;
      }
    }
    EXPECT_TRUE(found) << "seed " << seed;
  }
}

TEST(AnalyzeLint, DoubledDriverReportsMultiDrivenNet) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl = randomComb(seed, 8, 20);
    const NetId target = nl.gates()[0].out;  // already gate-driven
    const NetId source = nl.primaryInputs()[0];
    nl.addRogueDriver(target, source);

    const LintReport rep = lintNetlist(nl);
    const auto diags = rep.ofRule(rules::kMultiDrivenNet);
    ASSERT_EQ(diags.size(), 1u) << "seed " << seed << " " << rep.summary();
    EXPECT_EQ(diags[0]->severity, Severity::kError);
    EXPECT_EQ(diags[0]->nets, std::vector<NetId>{target});
  }
}

TEST(AnalyzeLint, UnboundFlopReportsUnclockedFlop) {
  Netlist nl = randomComb(3, 6, 10);
  const NetId q = nl.addDff();  // never connectDff'd
  const LintReport rep = lintNetlist(nl);
  const auto diags = rep.ofRule(rules::kUnclockedFlop);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kError);
  EXPECT_EQ(diags[0]->nets, std::vector<NetId>{q});
}

TEST(AnalyzeLint, LogicOutsideEveryConeIsUnreachable) {
  Netlist nl("orphan");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  const NetId live = b.and2(x[0], x[1]);
  const NetId dead = b.or2(x[0], x[1]);  // drives nothing observed
  b.output("y", Bus{b.not1(live)});
  nl.validate();

  const LintReport rep = lintNetlist(nl);
  const auto diags = rep.ofRule(rules::kUnreachableGate);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kWarning);
  EXPECT_TRUE(std::find(diags[0]->witness.begin(), diags[0]->witness.end(),
                        dead) != diags[0]->witness.end());
  EXPECT_TRUE(std::find(diags[0]->witness.begin(), diags[0]->witness.end(),
                        live) == diags[0]->witness.end());
}

TEST(AnalyzeLint, WidePrimaryInputBusIsAPackedStimulusHazard) {
  Netlist nl("wide");
  Builder b(nl);
  const Bus x = b.input("x", 70);
  b.output("y", Bus{b.and2(x[0], x[69])});
  nl.validate();

  EXPECT_FALSE(fitsPackedStimulus(nl));
  const LintReport rep = lintNetlist(nl);
  const auto diags = rep.ofRule(rules::kPackedStimulusWidth);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0]->severity, Severity::kWarning);

  LintOptions off;
  off.check_packed_stimulus = false;
  EXPECT_TRUE(lintNetlist(nl, off).ofRule(rules::kPackedStimulusWidth)
                  .empty());
}

TEST(AnalyzeLint, FanoutFreeRegionsAreOptIn) {
  Netlist nl("chain");
  Builder b(nl);
  const Bus x = b.input("x", 1);
  const NetId a = b.not1(x[0]);
  const NetId y = b.not1(a);
  b.output("y", Bus{y});
  nl.validate();

  EXPECT_TRUE(lintNetlist(nl).ofRule(rules::kFanoutFreeRegion).empty());
  LintOptions on;
  on.report_fanout_free_regions = true;
  const LintReport rep = lintNetlist(nl, on);
  const auto regions = rep.ofRule(rules::kFanoutFreeRegion);
  ASSERT_FALSE(regions.empty());
  EXPECT_EQ(regions[0]->severity, Severity::kInfo);
  // The inverter chain is one region headed at the output net.
  EXPECT_EQ(regions[0]->nets, std::vector<NetId>{y});
  EXPECT_TRUE(std::find(regions[0]->witness.begin(),
                        regions[0]->witness.end(), a) !=
              regions[0]->witness.end());
}

TEST(AnalyzeLint, JsonExportCarriesRuleAndWitness) {
  Netlist nl("loopjson");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  const NetId a = b.and2(x[0], x[1]);
  const NetId c = b.or2(a, x[0]);
  b.output("y", Bus{c});
  nl.validate();
  nl.rebindGateInput(0, 1, c);

  const LintReport rep = lintNetlist(nl);
  ASSERT_TRUE(rep.hasErrors());
  const std::string json = rep.toJson();
  EXPECT_NE(json.find("\"netlist\": \"loopjson\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"comb-loop\""), std::string::npos);
  EXPECT_NE(json.find("\"witness\""), std::string::npos);
  EXPECT_NE(rep.summary().find("loopjson"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SCOAP golden values
// ---------------------------------------------------------------------------

TEST(AnalyzeScoap, GoldenHandComputedCircuit) {
  // n1 = a & b, n2 = c | d, n3 = !n2, n4 = n1 ^ n3,
  // n5 = mux(a ? n4 : n1); POs = {n4, n5}. Every score below is the
  // hand-evaluated Goldstein recurrence.
  Netlist nl("scoap_gold");
  Builder b(nl);
  const Bus x = b.input("x", 4);
  const NetId n1 = b.and2(x[0], x[1]);
  const NetId n2 = b.or2(x[2], x[3]);
  const NetId n3 = b.not1(n2);
  const NetId n4 = b.xor2(n1, n3);
  const NetId n5 = b.mux(n1, n4, x[0]);
  b.output("y", Bus{n4, n5});
  nl.validate();

  const ScoapScores sc = computeScoap(nl, nl.primaryOutputs());
  for (const NetId pi : nl.primaryInputs()) {
    EXPECT_EQ(sc.cc0[pi], 1u);
    EXPECT_EQ(sc.cc1[pi], 1u);
  }
  EXPECT_EQ(sc.cc0[n1], 2u);  // min(1,1)+1
  EXPECT_EQ(sc.cc1[n1], 3u);  // 1+1+1
  EXPECT_EQ(sc.cc0[n2], 3u);
  EXPECT_EQ(sc.cc1[n2], 2u);
  EXPECT_EQ(sc.cc0[n3], 3u);  // cc1(n2)+1
  EXPECT_EQ(sc.cc1[n3], 4u);
  EXPECT_EQ(sc.cc0[n4], 6u);  // min(2+3, 3+4)+1
  EXPECT_EQ(sc.cc1[n4], 7u);  // min(2+4, 3+3)+1
  EXPECT_EQ(sc.cc0[n5], 4u);  // min(cc0(n1)+cc0(s), cc0(n4)+cc1(s))+1
  EXPECT_EQ(sc.cc1[n5], 5u);

  EXPECT_EQ(sc.co[n4], 0u);  // observed
  EXPECT_EQ(sc.co[n5], 0u);
  EXPECT_EQ(sc.co[n1], 2u);  // min(xor path 4, mux data path 2)
  EXPECT_EQ(sc.co[n3], 3u);  // 0 + min(cc0(n1), cc1(n1)) + 1
  EXPECT_EQ(sc.co[n2], 4u);  // through the inverter
  EXPECT_EQ(sc.co[x[0]], 4u);  // min(AND pin 4, MUX select 10)
  EXPECT_EQ(sc.co[x[1]], 4u);  // co(n1)+cc1(a)+1
  EXPECT_EQ(sc.co[x[2]], 6u);  // co(n2)+cc0(d)+1
  EXPECT_EQ(sc.co[x[3]], 6u);

  EXPECT_EQ(sc.cc(n1, true), 3u);
  EXPECT_EQ(sc.saCost(n1, false), 3u + 2u);  // drive 1, observe
}

TEST(AnalyzeScoap, GoldenNandNorBufXnor) {
  Netlist nl("scoap_gold2");
  Builder b(nl);
  const Bus x = b.input("x", 4);
  const NetId m1 = b.g2(GateType::kNand, x[0], x[1]);
  const NetId m2 = b.g2(GateType::kNor, x[2], x[3]);
  const NetId m3 = b.g1(GateType::kBuf, m1);
  const NetId m4 = b.g2(GateType::kXnor, m3, m2);
  b.output("y", Bus{m4});
  nl.validate();

  const ScoapScores sc = computeScoap(nl, nl.primaryOutputs());
  EXPECT_EQ(sc.cc0[m1], 3u);  // NAND: all inputs 1
  EXPECT_EQ(sc.cc1[m1], 2u);
  EXPECT_EQ(sc.cc0[m2], 2u);  // NOR: any input 1
  EXPECT_EQ(sc.cc1[m2], 3u);
  EXPECT_EQ(sc.cc0[m3], 4u);  // BUF: +1
  EXPECT_EQ(sc.cc1[m3], 3u);
  EXPECT_EQ(sc.cc1[m4], 7u);  // XNOR equal: min(4+2, 3+3)+1
  EXPECT_EQ(sc.cc0[m4], 6u);  // XNOR differ: min(4+3, 3+2)+1
}

TEST(AnalyzeScoap, DanglingNetIsUnobservable) {
  Netlist nl("dangle");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  const NetId dead = b.and2(x[0], x[1]);
  const NetId live = b.or2(x[0], x[1]);
  b.output("y", Bus{live});
  nl.validate();

  const ScoapScores sc = computeScoap(nl, nl.primaryOutputs());
  EXPECT_EQ(sc.co[dead], kScoapInf);
  EXPECT_LT(sc.co[live], kScoapInf);
  EXPECT_LT(sc.cc0[dead], kScoapInf);  // still controllable
}

// ---------------------------------------------------------------------------
// Fault collapsing: byte-identical expansion proven by full simulation
// ---------------------------------------------------------------------------

TEST(AnalyzeCollapse, ExpansionIsByteIdenticalOnTwentyRandomNetlists) {
  std::size_t total_collapsed = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Netlist nl = randomComb(seed, 10, 30);
    const CollapseResult c = collapseStuckAt(nl);
    ASSERT_EQ(c.class_of.size(), c.universe.size());
    ASSERT_EQ(c.representatives.size(), c.classes.size());
    total_collapsed += c.collapsedAway();

    CombFaultSim sim(nl, nl.primaryInputs(), nl.primaryOutputs());
    const RandomPatternSource patterns(seed * 77 + 1,
                                       nl.primaryInputs().size(), 256);
    FaultSimOptions o;
    o.cycles = 256;
    o.prepass_cycles = 0;
    o.num_threads = 1;

    const FaultSimResult full = sim.run(c.universe, patterns, o);
    const FaultSimResult reps = sim.run(c.representatives, patterns, o);
    const std::vector<std::int32_t> expanded =
        expandFirstDetect(c, reps.first_detect);
    ASSERT_EQ(expanded.size(), full.first_detect.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expanded.size(); ++i) {
      ASSERT_EQ(expanded[i], full.first_detect[i])
          << "seed " << seed << " fault " << i
          << ": collapsing changed the detection outcome";
    }
    // Check mode agrees: no class detects non-uniformly on this stimulus.
    EXPECT_TRUE(proveEquivalenceOnStimulus(sim, c, patterns, o).empty())
        << "seed " << seed;
  }
  // The classic rules must actually shrink the graded list somewhere.
  EXPECT_GT(total_collapsed, 0u);
}

TEST(AnalyzeCollapse, VisibleStemIsNeverMergedThroughItsReader) {
  // y1 = a & b with a ALSO a primary output: a-sa0 is observable at the PO
  // directly, out-sa0 is not — merging them would be wrong, and the
  // observation-aware pass must keep them apart.
  Netlist nl("stem_po");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  const NetId a = b.and2(x[0], x[1]);
  const NetId y = b.and2(a, x[0]);
  b.output("p", Bus{a});  // the gate-input stem is itself observed
  b.output("y", Bus{y});
  nl.validate();

  const CollapseResult c = collapseStuckAt(nl);
  // Find universe indices of a-sa0 (stem) and y-sa0 (stem).
  std::size_t ia = c.universe.size();
  std::size_t iy = c.universe.size();
  for (std::size_t i = 0; i < c.universe.size(); ++i) {
    const Fault& f = c.universe[i];
    if (f.gate != Fault::kNoGate || f.kind != FaultKind::kSa0) continue;
    if (f.net == a) ia = i;
    if (f.net == y) iy = i;
  }
  ASSERT_LT(ia, c.universe.size());
  ASSERT_LT(iy, c.universe.size());
  EXPECT_NE(c.class_of[ia], c.class_of[iy])
      << "stem merged across an observed net";
}

// ---------------------------------------------------------------------------
// SCOAP-guided PODEM: ordering heuristic only, coverage identical
// ---------------------------------------------------------------------------

TEST(AnalyzePodem, ScoapGuidanceKeepsTheTestableSetIdentical) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Netlist nl = randomComb(seed, 8, 25);
    const std::vector<Fault> faults = enumerateStuckAt(nl).faults;
    const ScoapScores sc = computeScoap(nl, nl.primaryOutputs());

    Podem base(nl, nl.primaryInputs(), nl.primaryOutputs(),
               /*backtrack_limit=*/4000);
    Podem guided(nl, nl.primaryInputs(), nl.primaryOutputs(), 4000);
    guided.setScoap(&sc);

    VectorPatternSource tests(nl.primaryInputs().size());
    std::vector<std::size_t> tested;  // fault index -> pattern index
    std::vector<std::size_t> tested_fault;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const auto tb = base.generate(faults[i]);
      const auto tg = guided.generate(faults[i]);
      ASSERT_EQ(tb.has_value(), tg.has_value())
          << "seed " << seed << " fault " << i
          << ": guidance changed testability";
      if (!tg.has_value()) continue;
      std::vector<std::uint8_t> bits(tg->size());
      for (std::size_t j = 0; j < tg->size(); ++j) {
        bits[j] = (*tg)[j] == Tv::k1 ? 1 : 0;  // X -> 0
      }
      tested_fault.push_back(i);
      tests.append(bits);
    }
    ASSERT_GT(tested_fault.size(), 0u);

    // Every guided test must actually detect its fault under full-fidelity
    // grading (X filled with 0, so detection at the generated pattern index
    // specifically is not guaranteed — detection *somewhere* is).
    CombFaultSim sim(nl, nl.primaryInputs(), nl.primaryOutputs());
    FaultSimOptions o;
    o.cycles = tests.patternCount();
    o.prepass_cycles = 0;
    o.num_threads = 1;
    std::vector<Fault> targeted;
    for (const std::size_t i : tested_fault) targeted.push_back(faults[i]);
    const FaultSimResult r = sim.run(targeted, tests, o);
    EXPECT_EQ(r.detected, targeted.size())
        << "seed " << seed << ": a guided PODEM test failed to detect";
  }
}

TEST(AnalyzePodem, NullScoresAreTheUnguidedBaseline) {
  const Netlist nl = randomComb(11, 8, 25);
  const std::vector<Fault> faults = enumerateStuckAt(nl).faults;
  Podem a(nl, nl.primaryInputs(), nl.primaryOutputs(), 256);
  Podem b(nl, nl.primaryInputs(), nl.primaryOutputs(), 256);
  b.setScoap(nullptr);  // explicit null == default
  for (const Fault& f : faults) {
    const auto ta = a.generate(f);
    const auto tb = b.generate(f);
    ASSERT_EQ(ta.has_value(), tb.has_value());
    if (ta.has_value()) {
      EXPECT_EQ(*ta, *tb);
    }
    EXPECT_EQ(a.backtracksUsed(), b.backtracksUsed());
  }
}

// ---------------------------------------------------------------------------
// Shared hazard guards (the one-place-for-the-limit satellites)
// ---------------------------------------------------------------------------

TEST(AnalyzeHazards, PatternSourcesUseTheSharedGuards) {
  static_assert(kMaxPackedStimulusInputs == 64);

  VectorPatternSource vps(4);
  const std::vector<std::uint8_t> short_bits(3, 0);
  EXPECT_THROW(vps.append(short_bits), std::invalid_argument);
  const std::vector<std::uint8_t> ok_bits(4, 1);
  vps.append(ok_bits);
  EXPECT_EQ(vps.patternCount(), 1);

  const std::vector<std::uint64_t> words(4, 0);
  EXPECT_THROW((CyclePatternSource{words, 65}), std::invalid_argument);
  const CyclePatternSource ok{words, 64};
  EXPECT_EQ(ok.patternCount(), 4);
}

TEST(AnalyzeHazards, SequentialAtpgRejectsWideModulesViaTheSharedRule) {
  Netlist nl("wide_seq");
  Builder b(nl);
  const Bus x = b.input("x", 70);
  b.output("y", Bus{b.and2(x[0], x[69])});
  nl.validate();
  const std::vector<Fault> faults = enumerateStuckAt(nl).faults;

  SeqAtpgOptions o;
  try {
    (void)runSequentialAtpg(nl, faults, o);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("runSequentialAtpg"), std::string::npos) << what;
    EXPECT_NE(what.find("64"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace corebist
