// ParallelFaultSim orchestration: byte-identical results to the serial
// engines on randomized netlists, under any thread count and shard size,
// with and without fault dropping — plus PatternBlock lane-count hygiene
// and pattern-source determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>

#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "netlist/builder.hpp"

namespace corebist {
namespace {

/// Random combinational DAG over `width` inputs.
Netlist randomComb(std::uint64_t seed, int width, int gates) {
  Netlist nl("rand");
  Builder b(nl);
  const Bus x = b.input("x", width);
  std::vector<NetId> pool(x.begin(), x.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(2 + rng() % 9);  // kBuf .. kMux2
    const NetId a = pool[rng() % pool.size()];
    const NetId bnet = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bnet);
        break;
      default:
        out = nl.addMux(a, bnet, s);
        break;
    }
    pool.push_back(out);
  }
  Bus outs(pool.end() - std::min<std::size_t>(8, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

/// Random sequential circuit: a combinational core whose last nets feed a
/// state register folded back into the input pool.
Netlist randomSeq(std::uint64_t seed, int width, int state_bits, int gates) {
  Netlist nl("rand_seq");
  Builder b(nl);
  const Bus x = b.input("x", width);
  const Bus q = b.state("q", state_bits);
  std::vector<NetId> pool(x.begin(), x.end());
  pool.insert(pool.end(), q.begin(), q.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(2 + rng() % 9);
    const NetId a = pool[rng() % pool.size()];
    const NetId bnet = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bnet);
        break;
      default:
        out = nl.addMux(a, bnet, s);
        break;
    }
    pool.push_back(out);
  }
  b.connect(q, Bus(pool.end() - state_bits, pool.end()));
  Bus outs(pool.end() - std::min<std::size_t>(6, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

std::vector<std::uint64_t> randomStimulus(std::uint64_t seed, int cycles,
                                          int width) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> stim(static_cast<std::size_t>(cycles));
  for (auto& w : stim) w = rng() & ((std::uint64_t{1} << width) - 1);
  return stim;
}

class ParallelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEquivalence, SeqShardsMatchSerialByteForByte) {
  const Netlist nl = randomSeq(GetParam(), 8, 5, 70);
  const FaultUniverse u = enumerateStuckAt(nl);
  const auto stim = randomStimulus(GetParam() ^ 0xBEEF, 192, 8);
  const CyclePatternSource patterns(stim, nl.primaryInputs().size());

  for (const bool drop : {true, false}) {
    SeqFsimOptions opts;
    opts.cycles = static_cast<int>(stim.size());
    opts.prepass_cycles = 32;
    opts.drop_detected = drop;
    opts.num_threads = 1;
    const SeqFaultSim serial(nl);
    const SeqFsimResult ref = serial.run(u.faults, stim, opts);

    for (const int threads : {1, 4, 8}) {
      ParallelFsimOptions popts;
      popts.num_threads = threads;
      popts.shard_faults = threads == 8 ? 17 : 63;  // odd shards too
      ParallelFaultSim psim(SeqFaultSim{nl}, popts);
      const FaultSimResult r = psim.run(u.faults, patterns, opts);
      EXPECT_EQ(r.first_detect, ref.first_detect)
          << "threads=" << threads << " drop=" << drop;
      EXPECT_EQ(r.detected, ref.detected);
      EXPECT_EQ(r.total, ref.total);
    }
  }
}

TEST_P(ParallelEquivalence, CombShardsMatchSerialByteForByte) {
  const Netlist nl = randomComb(GetParam(), 10, 60);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(GetParam() ^ 0xD00D,
                                     nl.primaryInputs().size(), 256);

  for (const bool drop : {true, false}) {
    FaultSimOptions opts;
    opts.cycles = 256;
    opts.prepass_cycles = 64;
    opts.drop_detected = drop;
    CombFaultSim serial(nl, nl.primaryInputs(), nl.primaryOutputs());
    const FaultSimResult ref = serial.run(u.faults, patterns, opts);

    for (const int threads : {1, 4, 8}) {
      ParallelFsimOptions popts;
      popts.num_threads = threads;
      ParallelFaultSim psim(
          CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
      const FaultSimResult r = psim.run(u.faults, patterns, opts);
      EXPECT_EQ(r.first_detect, ref.first_detect)
          << "threads=" << threads << " drop=" << drop;
      EXPECT_EQ(r.detected, ref.detected);
    }
  }
}

TEST_P(ParallelEquivalence, WindowedMisrRecordsMatchSerial) {
  const Netlist nl = randomSeq(GetParam() ^ 0x51, 7, 4, 50);
  const FaultUniverse u = enumerateStuckAt(nl);
  const auto stim = randomStimulus(GetParam() ^ 0xACE, 128, 7);
  const CyclePatternSource patterns(stim, nl.primaryInputs().size());

  MisrSpec misr;
  misr.width = 12;
  misr.poly = 0b100000101001ull | 1u;
  misr.feeds.resize(12);
  const auto& pos = nl.primaryOutputs();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    misr.feeds[i % 12].push_back(pos[i]);
  }

  SeqFsimOptions opts;
  opts.cycles = 128;
  opts.windows = 16;
  opts.misr = misr;
  const SeqFaultSim serial(nl);
  const SeqFsimResult ref = serial.run(u.faults, stim, opts);

  ParallelFsimOptions popts;
  popts.num_threads = 4;
  popts.shard_faults = 29;
  ParallelFaultSim psim(SeqFaultSim{nl}, popts);
  const FaultSimResult r = psim.run(u.faults, patterns, opts);

  EXPECT_EQ(r.first_detect, ref.first_detect);
  EXPECT_EQ(r.window_mask, ref.window_mask);
  EXPECT_EQ(r.misr_detect, ref.misr_detect);
  EXPECT_EQ(r.sig_words_per_fault, ref.sig_words_per_fault);
  EXPECT_EQ(r.window_sig, ref.window_sig);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalence,
                         ::testing::Values(11, 22, 33, 44));

TEST(PatternBlockLaneMask, ValidCountsProduceDenseMasks) {
  PatternBlock blk;
  blk.count = 64;
  EXPECT_EQ(blk.laneMask(), ~std::uint64_t{0});
  blk.count = 3;
  EXPECT_EQ(blk.laneMask(), 0b111u);
  blk.count = 1;
  EXPECT_EQ(blk.laneMask(), 0b1u);
}

TEST(PatternBlockLaneMask, OutOfRangeCountsAreClampedNotZeroed) {
  // Overflowing counts clamp to a full block; nonpositive counts clamp to
  // one lane — the old behavior silently returned an empty mask and ate
  // every detection. Debug builds assert instead (see death test below).
#ifdef NDEBUG
  PatternBlock blk;
  blk.count = 100;
  EXPECT_EQ(blk.laneMask(), ~std::uint64_t{0});
  blk.count = 0;
  EXPECT_EQ(blk.laneMask(), 1u);
  blk.count = -7;
  EXPECT_EQ(blk.laneMask(), 1u);
#else
  GTEST_SKIP() << "clamping is the release-mode fallback; this build asserts";
#endif
}

TEST(PatternBlockLaneMaskDeathTest, DebugBuildsAssertOnBadCount) {
  PatternBlock blk;
  blk.count = 0;
  EXPECT_DEBUG_DEATH((void)blk.laneMask(), "count out of");
}

TEST(RandomPatternSource, SameBlockSameBitsUnderAnySchedule) {
  const RandomPatternSource src(0xFACE, 12, 192);
  PatternBlock a, b;
  src.fill(128, a);  // out-of-order first touch
  src.fill(0, b);
  src.fill(128, b);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.count, b.count);
}

TEST(CyclePatternSource, TransposesPackedWordsIntoLanes) {
  const std::vector<std::uint64_t> words = {0b01, 0b10, 0b11};
  const CyclePatternSource src(words, 2);
  PatternBlock blk;
  src.fill(0, blk);
  ASSERT_EQ(blk.inputs.size(), 2u);
  EXPECT_EQ(blk.count, 3);
  EXPECT_EQ(blk.inputs[0], 0b101u);  // input 0 high in cycles 0 and 2
  EXPECT_EQ(blk.inputs[1], 0b110u);  // input 1 high in cycles 1 and 2
}

TEST(CombFaultSimRun, RejectsTransitionFaultsAndMisr) {
  const Netlist nl = randomComb(7, 6, 20);
  CombFaultSim fsim(nl, nl.primaryInputs(), nl.primaryOutputs());
  const RandomPatternSource patterns(1, nl.primaryInputs().size(), 64);
  FaultSimOptions opts;
  opts.cycles = 64;
  const Fault tdf{nl.primaryInputs()[0], Fault::kNoGate, 0,
                  FaultKind::kSlowRise};
  EXPECT_THROW((void)fsim.run(std::span<const Fault>(&tdf, 1), patterns,
                              opts),
               std::invalid_argument);
  opts.misr = MisrSpec{};
  EXPECT_THROW((void)fsim.run(std::span<const Fault>{}, patterns, opts),
               std::invalid_argument);
}

TEST(CombFaultSimRun, DictionaryRecordsFirstKAscending) {
  const Netlist nl = randomComb(99, 8, 40);
  const FaultUniverse u = enumerateStuckAt(nl);
  CombFaultSim fsim(nl, nl.primaryInputs(), nl.primaryOutputs());
  const RandomPatternSource patterns(3, nl.primaryInputs().size(), 256);
  FaultSimOptions opts;
  opts.cycles = 256;
  opts.prepass_cycles = 0;
  opts.record_detections = 4;
  const FaultSimResult r = fsim.run(u.faults, patterns, opts);
  ASSERT_EQ(r.detect_patterns.size(), u.faults.size());
  for (std::size_t i = 0; i < u.faults.size(); ++i) {
    const auto& list = r.detect_patterns[i];
    EXPECT_LE(list.size(), 4u);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    if (r.first_detect[i] >= 0) {
      ASSERT_FALSE(list.empty());
      EXPECT_EQ(static_cast<std::int32_t>(list.front()), r.first_detect[i]);
    } else {
      EXPECT_TRUE(list.empty());
    }
  }
}

}  // namespace
}  // namespace corebist
