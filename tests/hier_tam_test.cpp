// Hierarchical multi-TAM SoC campaigns: randomized topologies (1-4 TAMs,
// nesting depth <= 3, mixed core sizes) prove the scheduler fingerprint-
// identical to the serial single-channel path under every TAM / thread /
// channel-limit combination, plus negative tests for plans and topologies
// the resolver must reject. Style follows tests/wide_fsim_test.cpp: a
// deterministic generator seeded per case, one reference run, then
// equivalence sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/session_channel.hpp"
#include "core/soc.hpp"
#include "netlist/builder.hpp"

namespace corebist {
namespace {

/// Small self-checking module; `twist` varies structure, `width` size, so
/// cores carry genuinely different logic and different signatures.
Netlist makeToyModule(int twist, int width) {
  Netlist nl("toy" + std::to_string(twist) + "w" + std::to_string(width));
  Builder b(nl);
  const Bus x = b.input("x", width);
  const Bus q = b.state("q", width);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1 + twist % 3)));
  b.output("y", q);
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

std::unique_ptr<WrappedCore> makeCore(const std::string& name, int twist,
                                      int width) {
  auto core = std::make_unique<WrappedCore>(name);
  core->addModule(makeToyModule(twist, width));
  return core;
}

/// One randomized SoC: 1-4 TAMs, 2-4 top-level cores, a guaranteed
/// depth-2 chain under top core 0, random extra nesting to depth 3,
/// random defects. Deterministic in `case_id`, so two calls build
/// byte-identical chips.
struct RandomSoc {
  std::unique_ptr<Soc> soc;
  int tam_count = 1;
  int max_depth = 0;
};

RandomSoc buildRandomSoc(int case_id) {
  std::mt19937 rng(0xBEEF + static_cast<unsigned>(case_id));
  RandomSoc r;
  r.soc = std::make_unique<Soc>("hier_soc_" + std::to_string(case_id));
  r.tam_count = 1 + case_id % 4;
  for (int t = 1; t < r.tam_count; ++t) (void)r.soc->addTam();

  int twist = 0;
  auto width = [&rng] { return 8 + static_cast<int>(rng() % 5); };
  const int n_top = 2 + static_cast<int>(rng() % 3);
  std::vector<int> tops;
  for (int c = 0; c < n_top; ++c) {
    const int tam = static_cast<int>(rng() % static_cast<unsigned>(
                                                r.tam_count));
    tops.push_back(r.soc->attachCore(
        makeCore("top" + std::to_string(c), twist++, width()), tam));
  }
  // Guaranteed nested chain of depth 2 under the first top-level core.
  const int child0 = r.soc->attachChildCore(
      makeCore("nest1", twist++, width()), tops[0]);
  (void)r.soc->attachChildCore(makeCore("nest2", twist++, width()), child0);
  r.max_depth = 2;
  // Random extra nesting elsewhere, depth <= 3.
  for (std::size_t c = 1; c < tops.size(); ++c) {
    int parent = tops[c];
    for (int d = 1; d <= 3 && rng() % 2 == 0; ++d) {
      parent = r.soc->attachChildCore(
          makeCore("n" + std::to_string(c) + "d" + std::to_string(d),
                   twist++, width()),
          parent);
      r.max_depth = std::max(r.max_depth, d);
    }
  }
  // Random defects keep all three verdicts in play.
  for (int c = 0; c < r.soc->coreCount(); ++c) {
    if (rng() % 3 == 0) {
      const GateId victim = 3 + rng() % 4;
      const GateType twisted =
          rng() % 2 == 0 ? GateType::kXnor : GateType::kNand;
      r.soc->core(c).injectDefect(0, victim, twisted);
    }
  }
  return r;
}

/// Campaign over every core in a shuffled (but case-deterministic) order,
/// with some entries starved into timeouts/retries and random per-TAM
/// channel caps.
TestPlan makeRandomPlan(const RandomSoc& r, int case_id) {
  std::mt19937 rng(0xF00D + static_cast<unsigned>(case_id));
  std::vector<int> order(static_cast<std::size_t>(r.soc->coreCount()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::shuffle(order.begin(), order.end(), rng);

  TestPlan plan = TestPlan{}.withPatterns(96 + static_cast<int>(rng() % 3) *
                                                   32);
  for (const int core : order) {
    if (rng() % 4 == 0) {
      // Starved attempt: the poll budget ends long before the run can.
      plan.addCore(CorePlan{.core_index = core,
                            .patterns = 400,
                            .warmup_idle = 16,
                            .poll_budget = 2,
                            .poll_idle = 8,
                            .max_retries = static_cast<int>(rng() % 2)});
    } else {
      plan.addCore(core);
    }
  }
  for (int t = 0; t < r.tam_count; ++t) {
    if (rng() % 2 == 0) {
      plan.withTamChannels(t, 1 + static_cast<int>(rng() % 3));
    }
  }
  return plan;
}

TEST(HierTam, RandomizedTopologiesAreFingerprintIdenticalToSerial) {
  // The acceptance property: across randomized topologies — including
  // >= 20 with >= 2 TAMs and a nested depth-2 core — every TAM/thread
  // combination reproduces the serial single-channel fingerprint bit for
  // bit.
  constexpr int kCases = 28;
  int multi_tam_nested_cases = 0;
  for (int case_id = 0; case_id < kCases; ++case_id) {
    RandomSoc ref = buildRandomSoc(case_id);
    const TestPlan base = makeRandomPlan(ref, case_id);
    const std::string reference =
        SocTestScheduler(*ref.soc)
            .run(TestPlan(base).withThreads(1))
            .fingerprint();
    if (ref.tam_count >= 2 && ref.max_depth >= 2) ++multi_tam_nested_cases;

    for (const int threads : {2, 8}) {
      RandomSoc fresh = buildRandomSoc(case_id);  // identical initial state
      const SessionReport report =
          SocTestScheduler(*fresh.soc)
              .run(TestPlan(base).withThreads(threads));
      ASSERT_EQ(report.fingerprint(), reference)
          << "case " << case_id << " threads " << threads << " tams "
          << ref.tam_count << " depth " << ref.max_depth;
    }
  }
  EXPECT_GE(multi_tam_nested_cases, 20);
}

TEST(HierTam, NestedDefectIsLocalizedThroughTheChildChain) {
  Soc soc("nested");
  const int tam1 = soc.addTam("fast_tam");
  const int top = soc.attachCore(makeCore("top", 1, 10), tam1);
  const int child = soc.attachChildCore(makeCore("child", 2, 10), top);
  const int grand = soc.attachChildCore(makeCore("grand", 3, 10), child);
  soc.core(grand).injectDefect(0, 4, GateType::kNor);

  SocTestScheduler scheduler(soc);
  const SessionReport report =
      scheduler.run(TestPlan{}.withPatterns(200).withThreads(2));
  ASSERT_EQ(report.cores.size(), 3u);
  EXPECT_EQ(report.core(top)->verdict, CoreVerdict::kPass);
  EXPECT_EQ(report.core(child)->verdict, CoreVerdict::kPass);
  EXPECT_EQ(report.core(grand)->verdict, CoreVerdict::kSignatureMismatch);
  EXPECT_EQ(report.core(grand)->depth, 2);
  EXPECT_EQ(report.core(grand)->tam, tam1);
  // Reaching a nested core costs extra WIR routing scans.
  EXPECT_GT(report.core(grand)->tap_clocks, report.core(top)->tap_clocks);

  soc.core(grand).healModule(0);
  const CoreReport healed =
      scheduler.testCore(CorePlan{.core_index = grand, .patterns = 200});
  EXPECT_EQ(healed.verdict, CoreVerdict::kPass) << healed.summary();
}

TEST(HierTam, PerTamAccountingSlicesTheCampaign) {
  Soc soc("two_tams");
  const int t1 = soc.addTam("bulk");
  const int a = soc.attachCore(makeCore("a", 1, 9), 0);
  const int b = soc.attachCore(makeCore("b", 2, 9), t1);
  const int c = soc.attachCore(makeCore("c", 3, 9), t1);
  const int nested = soc.attachChildCore(makeCore("d", 4, 9), b);

  TestPlan plan = TestPlan{}.withPatterns(128).withThreads(2);
  plan.addCore(c).addCore(a).addCore(nested).addCore(b);
  const SessionReport report = SocTestScheduler(soc).run(plan);

  ASSERT_EQ(report.tams.size(), 2u);
  EXPECT_EQ(report.tams[0].tam_index, 0);
  EXPECT_EQ(report.tams[0].name, "tam0");
  EXPECT_EQ(report.tams[1].tam_index, t1);
  EXPECT_EQ(report.tams[1].name, "bulk");
  // Core order is plan order filtered per TAM, not completion order.
  EXPECT_EQ(report.tams[0].core_order, std::vector<int>({a}));
  EXPECT_EQ(report.tams[1].core_order, std::vector<int>({c, nested, b}));
  std::size_t tam_tcks = 0;
  for (const TamReport& tr : report.tams) tam_tcks += tr.tap_clocks;
  EXPECT_EQ(tam_tcks, report.total_tap_clocks);
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  const std::string fp = report.fingerprint();
  EXPECT_NE(fp.find("\"tams\""), std::string::npos);
  EXPECT_EQ(fp.find("\"utilization\""), std::string::npos);
  EXPECT_EQ(fp.find("\"channels\""), std::string::npos);
}

TEST(HierTam, PlanAssigningACoreToTheWrongTamIsRejected) {
  Soc soc("mismatch");
  const int t1 = soc.addTam();
  const int a = soc.attachCore(makeCore("a", 1, 9), 0);
  SocTestScheduler scheduler(soc);

  TestPlan wrong_tam;
  wrong_tam.addCore(CorePlan{.core_index = a, .tam = t1});
  EXPECT_THROW((void)scheduler.run(wrong_tam), std::invalid_argument);
  TestPlan bogus_tam;
  bogus_tam.addCore(CorePlan{.core_index = a, .tam = 99});
  EXPECT_THROW((void)scheduler.run(bogus_tam), std::invalid_argument);
  // The explicit assignment that matches the topology is fine.
  TestPlan right_tam;
  right_tam.addCore(CorePlan{.core_index = a, .tam = 0});
  EXPECT_EQ(scheduler.run(right_tam).cores.at(0).verdict, CoreVerdict::kPass);
}

TEST(HierTam, OverLimitChannelConfigsAreRejected) {
  Soc soc("limits");
  const int a = soc.attachCore(makeCore("a", 1, 9));
  (void)a;
  SocTestScheduler scheduler(soc);

  EXPECT_THROW((void)scheduler.run(TestPlan{}.withTamChannels(0, 0)),
               std::invalid_argument);
  EXPECT_THROW((void)scheduler.run(TestPlan{}.withTamChannels(
                   0, TestPlan::kMaxChannelsPerTam + 1)),
               std::invalid_argument);
  EXPECT_THROW((void)scheduler.run(TestPlan{}.withTamChannels(5, 2)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)scheduler.run(TestPlan{}.withTamChannels(0, 2).withTamChannels(
          0, 3)),
      std::invalid_argument);
  TestPlan bad_default;
  bad_default.channels_per_tam = -1;
  EXPECT_THROW((void)scheduler.run(bad_default), std::invalid_argument);
  // A valid cap runs and is reported.
  const SessionReport ok =
      scheduler.run(TestPlan{}.withPatterns(64).withTamChannels(0, 1));
  ASSERT_EQ(ok.tams.size(), 1u);
  EXPECT_EQ(ok.tams[0].channels, 1);
}

TEST(HierTam, BrokenHierarchiesAreRejectedAtBuildTime) {
  Soc soc("broken");
  EXPECT_THROW((void)soc.attachCore(makeCore("a", 1, 9), 7),
               std::invalid_argument);  // no such TAM
  const int a = soc.attachCore(makeCore("a", 1, 9));
  EXPECT_THROW((void)soc.attachChildCore(makeCore("b", 2, 9), -1),
               std::invalid_argument);
  EXPECT_THROW((void)soc.attachChildCore(makeCore("b", 2, 9), 99),
               std::invalid_argument);
  // Nesting beyond kMaxHierarchyDepth is refused.
  int parent = a;
  for (int d = 1; d <= Soc::kMaxHierarchyDepth; ++d) {
    parent = soc.attachChildCore(makeCore("d" + std::to_string(d), d, 8),
                                 parent);
  }
  EXPECT_THROW((void)soc.attachChildCore(makeCore("deep", 9, 8), parent),
               std::invalid_argument);
  // The chip TAP's 4-bit IR holds exactly 4 TAM blocks.
  Soc wide("wide");
  for (int t = 1; t < 4; ++t) (void)wide.addTam();
  EXPECT_THROW((void)wide.addTam(), std::invalid_argument);
  // A child listed twice in one plan is still a duplicate.
  Soc dup("dup");
  const int top = dup.attachCore(makeCore("t", 1, 9));
  const int kid = dup.attachChildCore(makeCore("k", 2, 9), top);
  TestPlan twice;
  twice.addCore(kid).addCore(top).addCore(kid);
  EXPECT_THROW((void)SocTestScheduler(dup).run(twice), std::invalid_argument);
}

TEST(HierTam, ChannelRefusesCoresOfOtherTams) {
  Soc soc("channel_guard");
  const int t1 = soc.addTam();
  (void)soc.attachCore(makeCore("a", 1, 9), 0);
  const int b = soc.attachCore(makeCore("b", 2, 9), t1);
  SessionChannel channel(soc, 0);
  std::mutex mu;
  EXPECT_THROW(
      (void)channel.testCore(CorePlan{.core_index = b, .patterns = 64},
                             nullptr, mu),
      std::logic_error);
}

TEST(HierTam, RerunOnTheSameHierarchicalSocIsIdentical) {
  // Campaigns leave nested cores re-testable: serial then sharded on one
  // chip yields the same fingerprint (state perturbations from testing a
  // parent — shared clock domain ticks — are erased by each attempt's
  // kReset/kLoadCount/kStart preamble).
  RandomSoc r = buildRandomSoc(3);
  const TestPlan plan = makeRandomPlan(r, 3);
  SocTestScheduler scheduler(*r.soc);
  const std::string first =
      scheduler.run(TestPlan(plan).withThreads(1)).fingerprint();
  const std::string second =
      scheduler.run(TestPlan(plan).withThreads(4)).fingerprint();
  EXPECT_EQ(first, second);
}

TEST(HierTam, ChipTapIsCreditedAcrossTams) {
  RandomSoc r = buildRandomSoc(5);
  const std::size_t before = r.soc->tap().tckCount();
  const SessionReport report = SocTestScheduler(*r.soc).run(
      TestPlan{}.withPatterns(96).withThreads(2));
  EXPECT_EQ(r.soc->tap().tckCount() - before, report.total_tap_clocks);
}

}  // namespace
}  // namespace corebist
