// Cross-engine property tests: invariants that tie the independent
// implementations (combinational vs sequential fault simulation, MISR
// linearity, scan-view vs functional semantics) to each other.
#include <gtest/gtest.h>

#include <random>

#include "bist/misr.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"
#include "netlist/builder.hpp"
#include "scan/scan.hpp"
#include "sim/seq_sim.hpp"

namespace corebist {
namespace {

/// Random combinational DAG over `width` inputs.
Netlist randomComb(std::uint64_t seed, int width, int gates) {
  Netlist nl("rand");
  Builder b(nl);
  const Bus x = b.input("x", width);
  std::vector<NetId> pool(x.begin(), x.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(
        2 + rng() % 9);  // kBuf .. kMux2
    const NetId a = pool[rng() % pool.size()];
    const NetId bnet = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bnet);
        break;
      default:
        out = nl.addMux(a, bnet, s);
        break;
    }
    pool.push_back(out);
  }
  Bus outs(pool.end() - std::min<std::size_t>(8, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

class RandomCircuitProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomCircuitProperty, CombAndSeqFaultSimAgreeOnCombCircuits) {
  // For a purely combinational circuit, a fault is detected by pattern p in
  // the PPSFP engine iff the sequential engine (which applies one pattern
  // per cycle) reports first detection at the first cycle carrying a
  // detecting pattern.
  const Netlist nl = randomComb(GetParam(), 10, 60);
  const FaultUniverse u = enumerateStuckAt(nl);
  const auto& pis = nl.primaryInputs();

  std::mt19937_64 rng(GetParam() ^ 0xFEED);
  const int cycles = 64;
  std::vector<std::uint64_t> stim(cycles);
  for (auto& w : stim) w = rng() & ((1u << pis.size()) - 1u);

  // Sequential run.
  SeqFaultSim sfsim(nl);
  SeqFsimOptions so;
  so.cycles = cycles;
  so.prepass_cycles = 0;
  const auto seq = sfsim.run(u.faults, stim, so);

  // Combinational run with the same 64 vectors as one block.
  CombFaultSim cfsim(nl, pis, nl.primaryOutputs());
  PatternBlock blk;
  blk.inputs.resize(pis.size());
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t j = 0; j < pis.size(); ++j) {
      if ((stim[static_cast<std::size_t>(c)] >> j) & 1u) {
        blk.inputs[j] |= std::uint64_t{1} << c;
      }
    }
  }
  cfsim.loadBlock(blk);
  for (std::size_t i = 0; i < u.faults.size(); ++i) {
    const auto det = cfsim.detect(u.faults[i]);
    if (det.none()) {
      EXPECT_EQ(seq.first_detect[i], -1) << describeFault(nl, u.faults[i]);
    } else {
      EXPECT_EQ(seq.first_detect[i], det.firstLane())
          << describeFault(nl, u.faults[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class MisrLinearity : public ::testing::TestWithParam<int> {};

TEST_P(MisrLinearity, SignatureIsLinearOverGf2) {
  // MISRs are linear: sig(x ^ y) == sig(x) ^ sig(y) for zero-initialized
  // registers. This is the algebraic basis of signature analysis.
  const int width = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(width) * 77);
  for (int trial = 0; trial < 20; ++trial) {
    Misr ma(width);
    Misr mb(width);
    Misr mab(width);
    for (int c = 0; c < 100; ++c) {
      const std::uint64_t a = rng();
      const std::uint64_t bword = rng();
      ma.stepWide(a, 48);
      mb.stepWide(bword, 48);
      mab.stepWide(a ^ bword, 48);
    }
    EXPECT_EQ(mab.state(), ma.state() ^ mb.state());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MisrLinearity,
                         ::testing::Values(8, 12, 16, 20, 24));

TEST(ScanProperty, CaptureEqualsFunctionalStep) {
  // scan_en=0 on the scanned module is exactly one functional clock: load
  // any state through the chain, capture once, and the flop contents equal
  // the original module's next-state function.
  Netlist nl("m");
  Builder b(nl);
  const Bus x = b.input("x", 6);
  const Bus q = b.state("q", 6);
  b.connect(q, b.add(q, x));
  b.output("q", q);
  nl.validate();

  const Netlist scanned = buildScannedModule(nl);
  SeqSim sim(scanned);
  sim.reset();
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned state = static_cast<unsigned>(rng() & 0x3F);
    const unsigned input = static_cast<unsigned>(rng() & 0x3F);
    // Shift the state in (MSB-first so cell 0 ends with bit 0).
    sim.comb().setBusBroadcast(scanned.findPort("scan_en")->bits, 1);
    sim.comb().setBusBroadcast(scanned.findPort("x")->bits, 0);
    for (int i = 5; i >= 0; --i) {
      sim.comb().setBusBroadcast(scanned.findPort("scan_in_0")->bits,
                                 (state >> i) & 1u);
      sim.step();
    }
    // One functional capture.
    sim.comb().setBusBroadcast(scanned.findPort("scan_en")->bits, 0);
    sim.comb().setBusBroadcast(scanned.findPort("x")->bits, input);
    sim.step();
    sim.evalComb();
    EXPECT_EQ(sim.comb().getBusLane(scanned.findPort("q")->bits, 0),
              (state + input) & 0x3Fu);
  }
}

TEST(FaultProperty, DetectionMasksAreSubsetsOfLaneMask) {
  const Netlist nl = randomComb(42, 8, 40);
  const FaultUniverse u = enumerateStuckAt(nl);
  CombFaultSim fsim(nl, nl.primaryInputs(), nl.primaryOutputs());
  PatternBlock blk;
  blk.inputs.assign(nl.primaryInputs().size(), 0);
  std::mt19937_64 rng(42);
  for (auto& w : blk.inputs) w = rng();
  blk.count = 17;  // partial block
  fsim.loadBlock(blk);
  for (const Fault& f : u.faults) {
    const auto det = fsim.detect(f);
    EXPECT_EQ(det.word(0) & ~blk.laneMask(), 0u);
    for (int wi = 1; wi < CombFaultSim::kWords; ++wi) {
      EXPECT_EQ(det.word(wi), 0u);
    }
  }
}

TEST(FaultProperty, SaFaultOnNetWithConstantValueIsUndetectable) {
  // A stuck-at equal to the only value a net ever takes cannot be detected.
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  const NetId t = b.and2(x[0], b.not1(x[0]));  // always 0
  b.output("y", Bus{b.or2(t, x[1])});
  CombFaultSim fsim(nl, nl.primaryInputs(), nl.primaryOutputs());
  PatternBlock blk;
  blk.inputs = {0b0110, 0b1010};  // exhaustive on 2 inputs (4 lanes)
  blk.count = 4;
  fsim.loadBlock(blk);
  const Fault sa0{t, Fault::kNoGate, 0, FaultKind::kSa0};
  EXPECT_TRUE(fsim.detect(sa0).none());
  const Fault sa1{t, Fault::kNoGate, 0, FaultKind::kSa1};
  EXPECT_TRUE(fsim.detect(sa1).any());
}

}  // namespace
}  // namespace corebist
