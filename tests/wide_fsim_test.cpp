// Wide-lane kernel equivalence: CombFaultSimT<2> / CombFaultSimT<4> /
// CombFaultSimT<8> (the AVX-512 width) must be byte-identical to the 64-lane
// reference CombFaultSimT<1> on randomized netlists across every campaign mode — partial tail blocks, windowed masks,
// first-K dictionary records, stall exits and transition pair blocks — plus
// the wide-fill decomposition contract of PatternSource and the thread-safe
// transposition cache of CyclePatternSource.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/lane.hpp"
#include "fault/parallel_fsim.hpp"
#include "netlist/builder.hpp"

namespace corebist {
namespace {

/// Random combinational DAG over `width` inputs.
Netlist randomComb(std::uint64_t seed, int width, int gates) {
  Netlist nl("rand");
  Builder b(nl);
  const Bus x = b.input("x", width);
  std::vector<NetId> pool(x.begin(), x.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(2 + rng() % 9);  // kBuf .. kMux2
    const NetId a = pool[rng() % pool.size()];
    const NetId bnet = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bnet);
        break;
      default:
        out = nl.addMux(a, bnet, s);
        break;
    }
    pool.push_back(out);
  }
  Bus outs(pool.end() - std::min<std::size_t>(8, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

template <int W>
FaultSimResult runWidth(const Netlist& nl, std::span<const Fault> faults,
                        const PatternSource& src, const FaultSimOptions& o) {
  CombFaultSimT<W> fsim(nl, nl.primaryInputs(), nl.primaryOutputs());
  return fsim.run(faults, src, o);
}

void expectSameResult(const FaultSimResult& ref, const FaultSimResult& got,
                      const char* what) {
  EXPECT_EQ(ref.first_detect, got.first_detect) << what;
  EXPECT_EQ(ref.window_mask, got.window_mask) << what;
  EXPECT_EQ(ref.detect_patterns, got.detect_patterns) << what;
  EXPECT_EQ(ref.patterns_applied, got.patterns_applied) << what;
  EXPECT_EQ(ref.detected, got.detected) << what;
  EXPECT_EQ(ref.total, got.total) << what;
}

class WideEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WideEquivalence, AllCampaignModesMatch64LaneReference) {
  const Netlist nl = randomComb(GetParam(), 10, 70);
  const FaultUniverse u = enumerateStuckAt(nl);
  // 420 = 1 full 256-lane pass + 164 (2 full sub-blocks + a 36-lane tail):
  // partial tails land mid-word at every width.
  const int cycles = 420;
  const RandomPatternSource random_src(GetParam() ^ 0xD00D,
                                       nl.primaryInputs().size(), cycles);
  std::mt19937_64 rng(GetParam() ^ 0xC1C);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(cycles));
  for (auto& w : words) {
    w = rng() & ((std::uint64_t{1} << nl.primaryInputs().size()) - 1);
  }
  const CyclePatternSource cycle_src(words, nl.primaryInputs().size());

  std::vector<FaultSimOptions> modes;
  {
    FaultSimOptions o;  // plain dropping campaign, partial tail
    o.cycles = cycles;
    o.prepass_cycles = 0;
    modes.push_back(o);
    o.drop_detected = false;  // full-length, no dropping
    modes.push_back(o);
    o = FaultSimOptions{};  // windowed masks (disables dropping internally)
    o.cycles = cycles;
    o.prepass_cycles = 0;
    o.windows = 8;
    modes.push_back(o);
    o = FaultSimOptions{};  // first-K dictionary records
    o.cycles = cycles;
    o.prepass_cycles = 0;
    o.record_detections = 3;
    modes.push_back(o);
    o = FaultSimOptions{};  // stall exit, 64-pattern-block semantics
    o.cycles = cycles;
    o.prepass_cycles = 0;
    o.stall_blocks = 1;
    modes.push_back(o);
    o.stall_blocks = 3;
    modes.push_back(o);
    o = FaultSimOptions{};  // stall exit without dropping
    o.cycles = cycles;
    o.prepass_cycles = 0;
    o.stall_blocks = 2;
    o.drop_detected = false;
    modes.push_back(o);
    o = FaultSimOptions{};  // stall + dictionary records
    o.cycles = cycles;
    o.prepass_cycles = 0;
    o.stall_blocks = 2;
    o.record_detections = 2;
    modes.push_back(o);
  }

  for (const PatternSource* src :
       {static_cast<const PatternSource*>(&random_src),
        static_cast<const PatternSource*>(&cycle_src)}) {
    for (std::size_t m = 0; m < modes.size(); ++m) {
      const auto ref = runWidth<1>(nl, u.faults, *src, modes[m]);
      const auto got2 = runWidth<2>(nl, u.faults, *src, modes[m]);
      const auto got4 = runWidth<4>(nl, u.faults, *src, modes[m]);
      const auto got8 = runWidth<8>(nl, u.faults, *src, modes[m]);
      SCOPED_TRACE("mode " + std::to_string(m));
      expectSameResult(ref, got2, "W=2 vs W=1");
      expectSameResult(ref, got4, "W=4 vs W=1");
      expectSameResult(ref, got8, "W=8 vs W=1");
    }
  }
}

TEST_P(WideEquivalence, ShortBudgetsAndSingleLaneMatch) {
  const Netlist nl = randomComb(GetParam() ^ 0x7777, 8, 40);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource src(GetParam(), nl.primaryInputs().size(), 512);
  for (const int cycles : {1, 17, 64, 65, 128, 129, 256, 257}) {
    FaultSimOptions o;
    o.cycles = cycles;
    o.prepass_cycles = 0;
    const auto ref = runWidth<1>(nl, u.faults, src, o);
    const auto got = runWidth<4>(nl, u.faults, src, o);
    const auto got8 = runWidth<8>(nl, u.faults, src, o);
    SCOPED_TRACE("cycles " + std::to_string(cycles));
    expectSameResult(ref, got, "W=4 vs W=1");
    expectSameResult(ref, got8, "W=8 vs W=1");
  }
}

TEST_P(WideEquivalence, TransitionPairBlocksMatch) {
  const Netlist nl = randomComb(GetParam() ^ 0x7DF0, 9, 50);
  const FaultUniverse u = enumerateStuckAt(nl);
  const std::vector<Fault> tdf = toTransitionFaults(u.faults);
  CombFaultSimT<1> narrow(nl, nl.primaryInputs(), nl.primaryOutputs());
  CombFaultSimT<4> wide(nl, nl.primaryInputs(), nl.primaryOutputs());
  CombFaultSimT<8> wide8(nl, nl.primaryInputs(), nl.primaryOutputs());
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    PatternBlock v1, v2;
    v1.inputs.resize(nl.primaryInputs().size());
    v2.inputs.resize(nl.primaryInputs().size());
    for (auto& w : v1.inputs) w = rng();
    for (auto& w : v2.inputs) w = rng();
    v1.count = v2.count = trial == 0 ? 23 : 64;  // include a partial block
    narrow.loadPairBlock(v1, v2);
    wide.loadPairBlock(v1, v2);
    wide8.loadPairBlock(v1, v2);
    for (const Fault& f : tdf) {
      const auto dn = narrow.detect(f);
      const auto dw = wide.detect(f);
      const auto d8 = wide8.detect(f);
      EXPECT_EQ(dn.word(0), dw.word(0)) << describeFault(nl, f);
      EXPECT_EQ(dn.word(0), d8.word(0)) << describeFault(nl, f);
      for (int wi = 1; wi < 4; ++wi) EXPECT_EQ(dw.word(wi), 0u);
      for (int wi = 1; wi < 8; ++wi) EXPECT_EQ(d8.word(wi), 0u);
    }
  }
}

TEST_P(WideEquivalence, ParallelOrchestrationOverWideKernelMatchesSerial) {
  const Netlist nl = randomComb(GetParam() ^ 0x9A9A, 10, 60);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource src(GetParam() ^ 0xF00, nl.primaryInputs().size(),
                                512);
  FaultSimOptions o;
  o.cycles = 512;
  o.prepass_cycles = 64;
  CombFaultSim serial(nl, nl.primaryInputs(), nl.primaryOutputs());
  const auto ref = serial.run(u.faults, src, o);
  for (const int threads : {1, 4}) {
    ParallelFsimOptions popts;
    popts.num_threads = threads;
    ParallelFaultSim psim(
        CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
    const auto r = psim.run(u.faults, src, o);
    EXPECT_EQ(r.first_detect, ref.first_detect) << "threads=" << threads;
    EXPECT_EQ(r.detected, ref.detected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(PatternSourceWideFill, DecomposesIntoNarrowSubBlockFills) {
  const RandomPatternSource src(0xABCD, 13, 500);
  for (const int start : {0, 256}) {
    PatternBlock wide;
    src.fillWide(start, 4, wide);
    ASSERT_EQ(wide.words_per_input, 4);
    ASSERT_EQ(wide.inputs.size(), 13u * 4u);
    EXPECT_EQ(wide.count, std::min(256, 500 - start));
    PatternBlock sub;
    for (int k = 0; 64 * k < wide.count; ++k) {
      src.fill(start + 64 * k, sub);
      const std::uint64_t tail = sub.laneMask();
      for (std::size_t j = 0; j < 13; ++j) {
        EXPECT_EQ(wide.word(j, k), sub.inputs[j] & tail)
            << "start=" << start << " sub=" << k << " input=" << j;
      }
    }
  }
}

TEST(Transpose64, MatchesNaiveBitTranspose) {
  std::mt19937_64 rng(0x7A7A);
  for (int trial = 0; trial < 8; ++trial) {
    std::uint64_t a[64];
    for (auto& w : a) w = rng();
    std::uint64_t naive[64] = {};
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 64; ++c) {
        if ((a[r] >> c) & 1u) naive[c] |= std::uint64_t{1} << r;
      }
    }
    std::uint64_t t[64];
    std::copy(a, a + 64, t);
    transpose64(t);
    for (int r = 0; r < 64; ++r) EXPECT_EQ(t[r], naive[r]) << "row " << r;
  }
}

TEST(CyclePatternSourceCache, WordTransposeMatchesBitLoop) {
  std::mt19937_64 rng(0xBEE);
  const std::size_t width = 29;
  std::vector<std::uint64_t> words(300);
  for (auto& w : words) w = rng() & ((std::uint64_t{1} << width) - 1);
  const CyclePatternSource src(words, width);
  PatternBlock blk;
  for (int start = 0; start < 300; start += 64) {
    src.fill(start, blk);
    const int n = std::min<int>(64, 300 - start);
    ASSERT_EQ(blk.count, n);
    for (std::size_t j = 0; j < width; ++j) {
      std::uint64_t expect = 0;
      for (int k = 0; k < n; ++k) {
        if ((words[static_cast<std::size_t>(start + k)] >> j) & 1u) {
          expect |= std::uint64_t{1} << k;
        }
      }
      EXPECT_EQ(blk.inputs[j], expect) << "start=" << start << " j=" << j;
    }
  }
}

TEST(CyclePatternSourceCache, CoherentUnderConcurrentFills) {
  std::mt19937_64 rng(0xCAFE);
  const std::size_t width = 24;
  std::vector<std::uint64_t> words(1024);
  for (auto& w : words) w = rng() & ((std::uint64_t{1} << width) - 1);
  const CyclePatternSource src(words, width);

  // Reference blocks from a private (uncontended) source.
  const CyclePatternSource ref_src(words, width);
  std::vector<PatternBlock> ref(16);
  for (int b = 0; b < 16; ++b) ref_src.fill(64 * b, ref[b]);

  std::vector<int> mismatches(8, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 trng(static_cast<std::uint64_t>(t));
      PatternBlock blk;
      for (int iter = 0; iter < 200; ++iter) {
        const int b = static_cast<int>(trng() % 16);
        if (iter % 3 == 0) {
          // Wide fills must hit the same cache coherently.
          src.fillWide(64 * b, 1, blk);
          blk.words_per_input = 1;
        } else {
          src.fill(64 * b, blk);
        }
        if (blk.inputs != ref[b].inputs || blk.count != ref[b].count) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(LaneWordOps, EightWordOpsMatchPortableSemantics) {
  // W=8 is the width with a dedicated AVX-512 path; check the operators
  // against scalar recomputation so an intrinsics bug cannot hide behind
  // the (vector-vector) equivalence tests above.
  using W8 = LaneWord<8>;
  std::mt19937_64 rng(0x8888);
  for (int trial = 0; trial < 32; ++trial) {
    W8 a, b;
    for (int i = 0; i < 8; ++i) {
      a.w[i] = rng();
      b.w[i] = rng();
    }
    const W8 land = a & b, lor = a | b, lxor = a ^ b, lnot = ~a;
    bool expect_any = false;
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(land.w[i], a.w[i] & b.w[i]);
      EXPECT_EQ(lor.w[i], a.w[i] | b.w[i]);
      EXPECT_EQ(lxor.w[i], a.w[i] ^ b.w[i]);
      EXPECT_EQ(lnot.w[i], ~a.w[i]);
      expect_any = expect_any || a.w[i] != 0;
    }
    EXPECT_EQ(a.any(), expect_any);
  }
  EXPECT_FALSE(W8::zero().any());
  EXPECT_TRUE(W8::ones().any());
  EXPECT_EQ(W8::ones().popcount(), 512);
  EXPECT_EQ(W8::lowLanes(512), W8::ones());
  EXPECT_EQ(W8::lowLanes(321).popcount(), 321);
  EXPECT_EQ(W8::zero().firstLane(), 512);
}

TEST(LaneWordOps, MasksAndLaneIndexing) {
  using W4 = LaneWord<4>;
  EXPECT_TRUE(W4::zero().none());
  EXPECT_TRUE(W4::ones().any());
  EXPECT_EQ(W4::ones().popcount(), 256);
  EXPECT_EQ(W4::lowLanes(0), W4::zero());
  EXPECT_EQ(W4::lowLanes(256), W4::ones());
  const W4 m = W4::lowLanes(130);
  EXPECT_EQ(m.word(0), ~std::uint64_t{0});
  EXPECT_EQ(m.word(1), ~std::uint64_t{0});
  EXPECT_EQ(m.word(2), 0b11u);
  EXPECT_EQ(m.word(3), 0u);
  W4 v = W4::zero();
  v.w[2] = 0b1000;
  EXPECT_EQ(v.firstLane(), 131);
  EXPECT_EQ((v & ~m).firstLane(), 131);
  EXPECT_EQ((v & m), W4::zero());
  EXPECT_EQ(W4::zero().firstLane(), 256);
}

}  // namespace
}  // namespace corebist
