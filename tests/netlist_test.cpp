// Unit tests for the netlist container, builder and levelization.
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "netlist/builder.hpp"
#include "netlist/export.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "sim/comb_sim.hpp"

namespace corebist {
namespace {

TEST(Gate, ArityTable) {
  EXPECT_EQ(gateArity(GateType::kConst0), 0);
  EXPECT_EQ(gateArity(GateType::kNot), 1);
  EXPECT_EQ(gateArity(GateType::kNand), 2);
  EXPECT_EQ(gateArity(GateType::kMux2), 3);
}

TEST(Gate, WordEvalTruthTables) {
  const std::uint64_t a = 0b1100;
  const std::uint64_t b = 0b1010;
  EXPECT_EQ(evalGateWord(GateType::kAnd, a, b, 0) & 0xF, 0b1000u);
  EXPECT_EQ(evalGateWord(GateType::kOr, a, b, 0) & 0xF, 0b1110u);
  EXPECT_EQ(evalGateWord(GateType::kXor, a, b, 0) & 0xF, 0b0110u);
  EXPECT_EQ(evalGateWord(GateType::kNand, a, b, 0) & 0xF, 0b0111u);
  EXPECT_EQ(evalGateWord(GateType::kNor, a, b, 0) & 0xF, 0b0001u);
  EXPECT_EQ(evalGateWord(GateType::kXnor, a, b, 0) & 0xF, 0b1001u);
  EXPECT_EQ(evalGateWord(GateType::kNot, a, 0, 0) & 0xF, 0b0011u);
  // Mux: sel ? b : a
  EXPECT_EQ(evalGateWord(GateType::kMux2, a, b, 0b1111) & 0xF, b & 0xF);
  EXPECT_EQ(evalGateWord(GateType::kMux2, a, b, 0b0000) & 0xF, a & 0xF);
}

TEST(Netlist, BasicConstruction) {
  Netlist nl("t");
  const NetId a = nl.addPrimaryInput();
  const NetId b = nl.addPrimaryInput();
  const NetId y = nl.addGate2(GateType::kAnd, a, b);
  nl.markPrimaryOutput(y);
  EXPECT_EQ(nl.numGates(), 1u);
  EXPECT_EQ(nl.numNets(), 3u);
  EXPECT_EQ(nl.driverOf(y), 0u);
  EXPECT_EQ(nl.driverOf(a), Netlist::kNoDriver);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, ValidateCatchesUnboundDff) {
  Netlist nl("t");
  const NetId q = nl.addDff();
  nl.markPrimaryOutput(q);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, ValidateCatchesUndrivenNet) {
  Netlist nl("t");
  const NetId a = nl.addPrimaryInput();
  const NetId dangling = nl.newNet();
  const NetId y = nl.addGate2(GateType::kOr, a, dangling);
  nl.markPrimaryOutput(y);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, DriveNetStitching) {
  Netlist nl("t");
  const NetId a = nl.addPrimaryInput();
  const NetId target = nl.newNet();
  nl.driveNet(target, a);
  EXPECT_NE(nl.driverOf(target), Netlist::kNoDriver);
  EXPECT_THROW(nl.driveNet(target, a), std::logic_error);
}

TEST(Netlist, AbsorbOffsetsEverything) {
  Netlist child("child");
  Builder cb(child);
  const Bus x = cb.input("x", 4);
  cb.output("y", cb.bwNot(x));

  Netlist parent("parent");
  Builder pb(parent);
  const Bus px = pb.input("px", 4);
  const NetId off = parent.absorb(child, "u0_");
  const PortBus* cx = parent.findPort("u0_x");
  ASSERT_NE(cx, nullptr);
  for (int i = 0; i < 4; ++i) {
    parent.driveNet(cx->bits[static_cast<std::size_t>(i)], px[static_cast<std::size_t>(i)]);
  }
  const PortBus* cy = parent.findPort("u0_y");
  ASSERT_NE(cy, nullptr);
  pb.output("py", cy->bits);
  EXPECT_NO_THROW(parent.validate());
  EXPECT_GT(off, 0u);

  CombSim sim(parent);
  sim.setBusBroadcast(px, 0b0101);
  sim.eval();
  EXPECT_EQ(sim.getBusLane(cy->bits, 0), 0b1010u);
}

TEST(Levelize, OrderRespectsDependencies) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 8);
  const Bus y = b.input("y", 8);
  const Bus s = b.add(x, y);
  b.output("s", s);
  const Levelization lev = levelize(nl);
  EXPECT_EQ(lev.order.size(), nl.numGates());
  std::vector<int> pos(nl.numGates(), -1);
  for (std::size_t i = 0; i < lev.order.size(); ++i) {
    pos[lev.order[i]] = static_cast<int>(i);
  }
  for (GateId g = 0; g < nl.numGates(); ++g) {
    for (int p = 0; p < nl.gates()[g].nin; ++p) {
      const GateId drv = nl.driverOf(nl.gates()[g].in[static_cast<std::size_t>(p)]);
      if (drv != Netlist::kNoDriver) {
        EXPECT_LT(pos[drv], pos[g]);
      }
    }
  }
}

TEST(Levelize, DetectsCombinationalLoop) {
  Netlist nl("t");
  const NetId a = nl.addPrimaryInput();
  const NetId loop = nl.newNet();
  const NetId y = nl.addGate2(GateType::kAnd, a, loop);
  nl.driveNet(loop, y);
  EXPECT_THROW(levelize(nl), std::logic_error);
}

class BuilderArithTest : public ::testing::TestWithParam<int> {};

TEST_P(BuilderArithTest, AdderMatchesReference) {
  const int width = GetParam();
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", width);
  const Bus y = b.input("y", width);
  b.output("sum", b.add(x, y));
  b.output("diff", b.sub(x, y));
  CombSim sim(nl);
  std::mt19937_64 rng(7);
  const std::uint64_t mask = width >= 64 ? ~std::uint64_t{0}
                                         : ((std::uint64_t{1} << width) - 1);
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint64_t xv = rng() & mask;
    const std::uint64_t yv = rng() & mask;
    sim.setBusBroadcast(x, xv);
    sim.setBusBroadcast(y, yv);
    sim.eval();
    EXPECT_EQ(sim.getBusLane(nl.findPort("sum")->bits, 0), (xv + yv) & mask);
    EXPECT_EQ(sim.getBusLane(nl.findPort("diff")->bits, 0), (xv - yv) & mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BuilderArithTest,
                         ::testing::Values(1, 4, 8, 12, 16, 20, 32));

TEST(Builder, IncrementAndNegate) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 8);
  b.output("inc", b.inc(x));
  b.output("neg", b.neg(x));
  CombSim sim(nl);
  for (std::uint64_t v : {0ull, 1ull, 0x7Full, 0x80ull, 0xFFull, 0x55ull}) {
    sim.setBusBroadcast(x, v);
    sim.eval();
    EXPECT_EQ(sim.getBusLane(nl.findPort("inc")->bits, 0), (v + 1) & 0xFF);
    EXPECT_EQ(sim.getBusLane(nl.findPort("neg")->bits, 0), (-v) & 0xFF);
  }
}

TEST(Builder, Comparisons) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 8);
  const Bus y = b.input("y", 8);
  b.output("eq", Bus{b.eq(x, y)});
  b.output("lt", Bus{b.ltU(x, y)});
  b.output("eq42", Bus{b.eqConst(x, 42)});
  CombSim sim(nl);
  std::mt19937_64 rng(3);
  for (int iter = 0; iter < 300; ++iter) {
    const std::uint64_t xv = rng() & 0xFF;
    const std::uint64_t yv = rng() & 0xFF;
    sim.setBusBroadcast(x, xv);
    sim.setBusBroadcast(y, yv);
    sim.eval();
    EXPECT_EQ(sim.getBusLane(nl.findPort("eq")->bits, 0), xv == yv ? 1u : 0u);
    EXPECT_EQ(sim.getBusLane(nl.findPort("lt")->bits, 0), xv < yv ? 1u : 0u);
    EXPECT_EQ(sim.getBusLane(nl.findPort("eq42")->bits, 0),
              xv == 42 ? 1u : 0u);
  }
}

TEST(Builder, SaturatingSignedAdd) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 6);
  const Bus y = b.input("y", 6);
  b.output("s", b.satAddSigned(x, y));
  CombSim sim(nl);
  auto ref = [](int a, int bb) {
    int s = a + bb;
    if (s > 31) s = 31;
    if (s < -32) s = -32;
    return s & 0x3F;
  };
  for (int a = -32; a < 32; a += 3) {
    for (int c = -32; c < 32; c += 5) {
      sim.setBusBroadcast(x, static_cast<std::uint64_t>(a & 0x3F));
      sim.setBusBroadcast(y, static_cast<std::uint64_t>(c & 0x3F));
      sim.eval();
      EXPECT_EQ(sim.getBusLane(nl.findPort("s")->bits, 0),
                static_cast<std::uint64_t>(ref(a, c)))
          << "a=" << a << " b=" << c;
    }
  }
}

TEST(Builder, AbsSigned) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 6);
  b.output("abs", b.absSigned(x));
  CombSim sim(nl);
  for (int a = -31; a < 32; ++a) {
    sim.setBusBroadcast(x, static_cast<std::uint64_t>(a & 0x3F));
    sim.eval();
    EXPECT_EQ(sim.getBusLane(nl.findPort("abs")->bits, 0),
              static_cast<std::uint64_t>(a < 0 ? -a : a));
  }
}

TEST(Builder, MuxTreeSelectsCorrectInput) {
  Netlist nl("t");
  Builder b(nl);
  std::vector<Bus> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(b.input("i" + std::to_string(i), 4));
  const Bus sel = b.input("sel", 3);
  b.output("y", b.muxN(ins, sel));
  CombSim sim(nl);
  for (int s = 0; s < 8; ++s) {
    for (int i = 0; i < 8; ++i) {
      sim.setBusBroadcast(ins[static_cast<std::size_t>(i)],
                          static_cast<std::uint64_t>(i + 3));
    }
    sim.setBusBroadcast(sel, static_cast<std::uint64_t>(s));
    sim.eval();
    EXPECT_EQ(sim.getBusLane(nl.findPort("y")->bits, 0),
              static_cast<std::uint64_t>(s + 3));
  }
}

TEST(Builder, RotateLeft) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 8);
  const Bus amt = b.input("amt", 3);
  b.output("y", b.rotateLeft(x, amt));
  CombSim sim(nl);
  const std::uint64_t v = 0b10110001;
  for (int k = 0; k < 8; ++k) {
    sim.setBusBroadcast(x, v);
    sim.setBusBroadcast(amt, static_cast<std::uint64_t>(k));
    sim.eval();
    const std::uint64_t expect = ((v << k) | (v >> (8 - k))) & 0xFF;
    EXPECT_EQ(sim.getBusLane(nl.findPort("y")->bits, 0), expect) << k;
  }
}

TEST(Builder, DecodeOneHot) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 3);
  b.output("d", b.decode(x));
  CombSim sim(nl);
  for (int v = 0; v < 8; ++v) {
    sim.setBusBroadcast(x, static_cast<std::uint64_t>(v));
    sim.eval();
    EXPECT_EQ(sim.getBusLane(nl.findPort("d")->bits, 0),
              std::uint64_t{1} << v);
  }
}

TEST(Builder, ReduceOps) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 7);
  b.output("rand", Bus{b.reduceAnd(x)});
  b.output("ror", Bus{b.reduceOr(x)});
  b.output("rxor", Bus{b.reduceXor(x)});
  CombSim sim(nl);
  for (std::uint64_t v : {0ull, 0x7Full, 0x15ull, 0x40ull, 0x3Full}) {
    sim.setBusBroadcast(x, v);
    sim.eval();
    EXPECT_EQ(sim.getBusLane(nl.findPort("rand")->bits, 0),
              v == 0x7F ? 1u : 0u);
    EXPECT_EQ(sim.getBusLane(nl.findPort("ror")->bits, 0), v != 0 ? 1u : 0u);
    EXPECT_EQ(sim.getBusLane(nl.findPort("rxor")->bits, 0),
              static_cast<std::uint64_t>(std::popcount(v) & 1));
  }
}

TEST(Export, DotContainsPortsAndGates) {
  Netlist nl("dot");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  b.output("y", Bus{b.and2(x[0], x[1])});
  const std::string dot = exportDot(nl);
  EXPECT_NE(dot.find("digraph \"dot\""), std::string::npos);
  EXPECT_NE(dot.find("AND2"), std::string::npos);
  EXPECT_NE(dot.find("x[0]"), std::string::npos);
  EXPECT_NE(dot.find("y[0]"), std::string::npos);
  // Truncation marker appears when the budget is tiny.
  EXPECT_NE(exportDot(nl, 0).find("truncated"), std::string::npos);
}

TEST(Builder, PortWidthAccounting) {
  Netlist nl("t");
  Builder b(nl);
  b.output("y", b.bwNot(b.input("a", 10)));
  (void)b.input("b", 7);
  EXPECT_EQ(nl.portWidth(true), 17);
  EXPECT_EQ(nl.portWidth(false), 10);
}

}  // namespace
}  // namespace corebist
