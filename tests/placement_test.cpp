// Makespan-aware TAM placement and the what-if API: the P1500Ate cost
// model must equal the measured TCK accounting (the protocol is bit-banged
// and fixed-length, so prediction is arithmetic, not estimation), the
// placement pass must be deterministic with an index-order tie-break,
// kMakespan must never predict a worse makespan than kPlanOrder, and every
// placement field must stay out of the campaign fingerprint. Also the JSON
// finite-guard regression: inf/NaN doubles (zero-wall-time campaigns) must
// never reach the artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/scheduler.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "netlist/builder.hpp"
#include "tam/ate.hpp"

namespace corebist {
namespace {

Netlist makeToyModule(int twist) {
  Netlist nl("toy" + std::to_string(twist));
  Builder b(nl);
  const Bus x = b.input("x", 12);
  const Bus q = b.state("q", 12);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1 + twist % 3)));
  b.output("y", q);
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

std::unique_ptr<WrappedCore> makeCore(const std::string& name, int twist,
                                      int modules = 1) {
  auto core = std::make_unique<WrappedCore>(name);
  for (int m = 0; m < modules; ++m) core->addModule(makeToyModule(twist + m));
  return core;
}

/// `tams` TAMs, `per_tam` flat cores each, plus one nested core under each
/// TAM's first top-level core.
std::unique_ptr<Soc> makeMultiTamSoc(int tams, int per_tam) {
  auto soc = std::make_unique<Soc>("place_soc");
  for (int t = 1; t < tams; ++t) (void)soc->addTam();
  std::vector<int> first(static_cast<std::size_t>(tams), -1);
  for (int c = 0; c < tams * per_tam; ++c) {
    const int tam = c % tams;
    const int idx =
        soc->attachCore(makeCore("c" + std::to_string(c), c), tam);
    if (first[static_cast<std::size_t>(tam)] < 0) {
      first[static_cast<std::size_t>(tam)] = idx;
    }
  }
  for (int t = 0; t < tams; ++t) {
    (void)soc->attachChildCore(makeCore("n" + std::to_string(t), 50 + t),
                               first[static_cast<std::size_t>(t)]);
  }
  return soc;
}

TEST(Placement, PredictionEqualsMeasuredTapClocks) {
  // Every scan in the session protocol is fixed-length, so with the default
  // warmup (dwell covers the whole run, exactly one poll) the cost model is
  // not an estimate: per-core predicted TCKs equal the measured tap_clocks,
  // including the doubled wrapper-chain cost of nested (depth-1) cores.
  auto soc = makeMultiTamSoc(2, 2);
  SocTestScheduler scheduler(*soc);
  const TestPlan plan = TestPlan{}.withPatterns(200).withThreads(1);
  const PlanForecast forecast = scheduler.predict(plan);
  const SessionReport report = scheduler.run(plan);
  ASSERT_EQ(forecast.cores.size(), report.cores.size());
  bool saw_nested = false;
  for (std::size_t i = 0; i < report.cores.size(); ++i) {
    EXPECT_EQ(forecast.cores[i].core_index, report.cores[i].core_index);
    EXPECT_EQ(forecast.cores[i].predicted_tap_clocks,
              report.cores[i].tap_clocks)
        << "core " << report.cores[i].core_index << " depth "
        << report.cores[i].depth;
    EXPECT_EQ(forecast.cores[i].predicted_bist_cycles,
              report.cores[i].bist_cycles);
    if (forecast.cores[i].depth > 0) saw_nested = true;
  }
  EXPECT_TRUE(saw_nested);
  EXPECT_EQ(forecast.predicted_total_tcks, report.total_tap_clocks);
  // With exact per-core predictions the per-channel actuals match too.
  for (const TamReport& tr : report.tams) {
    EXPECT_EQ(tr.predicted_tap_clocks, tr.tap_clocks);
    EXPECT_EQ(tr.predicted_makespan_tcks, tr.actual_makespan_tcks);
    for (const ChannelLoad& cl : tr.channel_loads) {
      EXPECT_EQ(cl.predicted_tcks, cl.actual_tcks);
    }
  }
  EXPECT_EQ(report.predicted_makespan_tcks, report.actual_makespan_tcks);
}

TEST(Placement, PredictSpendsNoTcks) {
  auto soc = makeMultiTamSoc(2, 3);
  SocTestScheduler scheduler(*soc);
  const std::size_t before = soc->tap().tckCount();
  const PlanForecast forecast =
      scheduler.predict(TestPlan{}.withPatterns(300));
  EXPECT_GT(forecast.predicted_total_tcks, 0u);
  EXPECT_EQ(soc->tap().tckCount(), before);
}

TEST(Placement, PredictValidatesLikeRun) {
  auto soc = makeMultiTamSoc(1, 2);
  SocTestScheduler scheduler(*soc);
  TestPlan bad;
  bad.addCore(99);
  EXPECT_THROW((void)scheduler.predict(bad), std::invalid_argument);
  TestPlan wrong_tam;
  wrong_tam.cores.push_back(CorePlan{.core_index = 0, .tam = 7});
  EXPECT_THROW((void)scheduler.predict(wrong_tam), std::invalid_argument);
}

TEST(Placement, PredictedMakespanMonotoneInPatternBudget) {
  auto soc = makeMultiTamSoc(2, 3);
  SocTestScheduler scheduler(*soc);
  std::size_t prev = 0;
  for (const int patterns : {64, 128, 256, 512}) {
    for (const PlacementPolicy policy :
         {PlacementPolicy::kPlanOrder, PlacementPolicy::kMakespan}) {
      const PlanForecast f = scheduler.predict(TestPlan{}
                                                   .withPatterns(patterns)
                                                   .withThreads(4)
                                                   .withPlacement(policy));
      EXPECT_GT(f.predicted_makespan_tcks, 0u);
      if (policy == PlacementPolicy::kPlanOrder) {
        EXPECT_GT(f.predicted_makespan_tcks, prev)
            << "patterns " << patterns;
        prev = f.predicted_makespan_tcks;
      }
    }
  }
}

TEST(Placement, RespectsChannelLimits) {
  auto soc = makeMultiTamSoc(2, 4);
  SocTestScheduler scheduler(*soc);
  for (const int limit : {1, 2, 3}) {
    const PlanForecast f = scheduler.predict(TestPlan{}
                                                 .withPatterns(100)
                                                 .withThreads(8)
                                                 .withChannelsPerTam(limit)
                                                 .withPlacement(
                                                     PlacementPolicy::kMakespan));
    ASSERT_EQ(f.tams.size(), 2u);
    for (const TamForecast& tf : f.tams) {
      EXPECT_LE(tf.channels, limit);
      EXPECT_EQ(tf.channel_loads.size(),
                static_cast<std::size_t>(tf.channels));
      // Every channel the placement opens carries work.
      for (const ChannelLoad& cl : tf.channel_loads) {
        EXPECT_FALSE(cl.cores.empty());
        EXPECT_GT(cl.predicted_tcks, 0u);
      }
    }
  }
  // A per-TAM override caps only its TAM.
  const PlanForecast f =
      scheduler.predict(TestPlan{}.withPatterns(100).withThreads(8)
                            .withTamChannels(0, 1));
  EXPECT_EQ(f.tams[0].channels, 1);
  EXPECT_GT(f.tams[1].channels, 1);
}

TEST(Placement, MakespanNeverPredictsWorseThanPlanOrder) {
  // 20 randomized multi-TAM topologies with heterogeneous pattern budgets:
  // the kMakespan placement keeps whichever refined candidate predicts the
  // smaller makespan, so it can never lose to kPlanOrder — per TAM and
  // overall.
  std::mt19937 rng(20260808u);
  for (int trial = 0; trial < 20; ++trial) {
    const int tams = 1 + static_cast<int>(rng() % 3);
    const int per_tam = 2 + static_cast<int>(rng() % 4);
    auto soc = makeMultiTamSoc(tams, per_tam);
    SocTestScheduler scheduler(*soc);
    TestPlan plan = TestPlan{}.withThreads(8).withChannelsPerTam(
        1 + static_cast<int>(rng() % 3));
    for (int c = 0; c < soc->coreCount(); ++c) {
      plan.addCore(CorePlan{.core_index = c,
                            .patterns = 32 + static_cast<int>(rng() % 700)});
    }
    TestPlan po = plan;
    TestPlan mk = plan;
    const PlanForecast fpo =
        scheduler.predict(po.withPlacement(PlacementPolicy::kPlanOrder));
    const PlanForecast fmk =
        scheduler.predict(mk.withPlacement(PlacementPolicy::kMakespan));
    EXPECT_LE(fmk.predicted_makespan_tcks, fpo.predicted_makespan_tcks)
        << "trial " << trial;
    ASSERT_EQ(fmk.tams.size(), fpo.tams.size());
    for (std::size_t t = 0; t < fmk.tams.size(); ++t) {
      EXPECT_LE(fmk.tams[t].predicted_makespan_tcks,
                fpo.tams[t].predicted_makespan_tcks)
          << "trial " << trial << " tam " << t;
      // Both policies place all of the TAM's work, just differently.
      EXPECT_EQ(fmk.tams[t].predicted_tap_clocks,
                fpo.tams[t].predicted_tap_clocks);
    }
  }
}

TEST(Placement, DeterministicIndexOrderTieBreak) {
  // Four identical trees on one TAM, three channels: the greedy walk must
  // fill channels 0, 1, 2 in index order (strict less-than keeps the
  // lowest-index channel on equal load), and the whole placement must be
  // reproducible call over call.
  auto soc = std::make_unique<Soc>("tie_soc");
  for (int c = 0; c < 4; ++c) {
    (void)soc->attachCore(makeCore("t" + std::to_string(c), 7));
  }
  SocTestScheduler scheduler(*soc);
  const TestPlan plan = TestPlan{}
                            .withPatterns(100)
                            .withThreads(4)
                            .withChannelsPerTam(3)
                            .withPlacement(PlacementPolicy::kMakespan);
  const PlanForecast f = scheduler.predict(plan);
  ASSERT_EQ(f.tams.size(), 1u);
  ASSERT_EQ(f.tams[0].channel_loads.size(), 3u);
  // All four trees cost the same, so the fourth doubles up on channel 0.
  EXPECT_EQ(f.tams[0].channel_loads[0].cores.size(), 2u);
  EXPECT_EQ(f.tams[0].channel_loads[1].cores.size(), 1u);
  EXPECT_EQ(f.tams[0].channel_loads[2].cores.size(), 1u);
  for (std::size_t ch = 0; ch < 3; ++ch) {
    EXPECT_EQ(f.tams[0].channel_loads[ch].channel, static_cast<int>(ch));
  }
  // Byte-for-byte repeatable placement (pure function of the plan).
  for (int rep = 0; rep < 3; ++rep) {
    const PlanForecast g = scheduler.predict(plan);
    ASSERT_EQ(g.tams[0].channel_loads.size(), 3u);
    for (std::size_t ch = 0; ch < 3; ++ch) {
      EXPECT_EQ(g.tams[0].channel_loads[ch].cores,
                f.tams[0].channel_loads[ch].cores);
      EXPECT_EQ(g.tams[0].channel_loads[ch].predicted_tcks,
                f.tams[0].channel_loads[ch].predicted_tcks);
    }
  }
}

TEST(Placement, PolicyNeverChangesCampaignOutcomes) {
  // Placement moves work between channels; it must never change what the
  // campaign *finds*. Heterogeneous budgets + a defect + both policies at
  // several thread counts: all fingerprints equal the serial reference.
  auto build = [] {
    auto soc = makeMultiTamSoc(2, 3);
    soc->core(1).injectDefect(0, 3, GateType::kXnor);
    return soc;
  };
  TestPlan base = TestPlan{}.withChannelsPerTam(2);
  {
    auto probe = build();
    for (int c = 0; c < probe->coreCount(); ++c) {
      base.addCore(CorePlan{.core_index = c, .patterns = 100 + 60 * c});
    }
  }
  std::string reference;
  {
    auto soc = build();
    TestPlan serial = base;
    reference = SocTestScheduler(*soc).run(serial.withThreads(1)).fingerprint();
  }
  EXPECT_NE(reference.find("\"verdict\": \"signature_mismatch\""),
            std::string::npos);
  for (const PlacementPolicy policy :
       {PlacementPolicy::kPlanOrder, PlacementPolicy::kMakespan}) {
    for (const int threads : {2, 4}) {
      auto soc = build();
      TestPlan plan = base;
      plan.withPlacement(policy).withThreads(threads);
      const SessionReport report = SocTestScheduler(*soc).run(plan);
      EXPECT_EQ(report.fingerprint(), reference)
          << placementPolicyName(policy) << " x" << threads;
      EXPECT_EQ(report.placement, placementPolicyName(policy));
    }
  }
}

TEST(Placement, FieldsAreTimingGatedOutOfFingerprint) {
  auto soc = makeMultiTamSoc(2, 2);
  SocTestScheduler scheduler(*soc);
  const SessionReport report = scheduler.run(TestPlan{}
                                                 .withPatterns(100)
                                                 .withThreads(4)
                                                 .withPlacement(
                                                     PlacementPolicy::kMakespan));
  const std::string json = report.toJson();
  const std::string fp = report.fingerprint();
  for (const char* key :
       {"placement", "predicted_makespan_tcks", "actual_makespan_tcks",
        "channel_loads", "predicted_tap_clocks"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_EQ(fp.find(key), std::string::npos) << key;
  }
}

/// Captures the placement decision stream.
struct PlacementObserver final : SessionObserver {
  struct Placed {
    int tam;
    int channel;
    std::vector<int> cores;
    std::size_t predicted_tcks;
  };
  std::vector<Placed> placed;
  int campaign_starts = 0;
  void onCampaignStart(int, int) override { ++campaign_starts; }
  void onChannelPlaced(int tam, int channel, const std::vector<int>& cores,
                       std::size_t predicted_tcks) override {
    EXPECT_EQ(campaign_starts, 1);  // after start, before any core
    placed.push_back(Placed{tam, channel, cores, predicted_tcks});
  }
};

TEST(Placement, ObserverSeesEveryChannelOnceInOrder) {
  auto soc = makeMultiTamSoc(2, 3);
  PlacementObserver obs;
  SocTestScheduler scheduler(*soc, &obs);
  const SessionReport report = scheduler.run(TestPlan{}
                                                 .withPatterns(100)
                                                 .withThreads(4)
                                                 .withChannelsPerTam(2));
  ASSERT_FALSE(obs.placed.empty());
  std::vector<int> seen_cores;
  for (std::size_t i = 0; i < obs.placed.size(); ++i) {
    if (i > 0) {
      const auto& a = obs.placed[i - 1];
      const auto& b = obs.placed[i];
      EXPECT_TRUE(a.tam < b.tam || (a.tam == b.tam && a.channel < b.channel));
    }
    for (const int c : obs.placed[i].cores) seen_cores.push_back(c);
  }
  std::sort(seen_cores.begin(), seen_cores.end());
  std::vector<int> all;
  for (const CoreReport& c : report.cores) all.push_back(c.core_index);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(seen_cores, all);
}

TEST(JsonFinite, ClampsNonFiniteDoubles) {
  EXPECT_EQ(jsonFinite(1.5), 1.5);
  EXPECT_EQ(jsonFinite(0.0), 0.0);
  EXPECT_EQ(jsonFinite(std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_EQ(jsonFinite(-std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_EQ(jsonFinite(std::numeric_limits<double>::quiet_NaN()), 0.0);
}

TEST(JsonFinite, ReportJsonSurvivesNonFiniteFields) {
  // Regression for the zero-wall-time campaign: a report whose doubles went
  // inf/NaN (utilization = busy / 0, etc.) must still serialize to JSON —
  // %f would otherwise print bare `inf` / `nan` tokens into the artifact.
  SessionReport r;
  r.soc_name = "degenerate";
  r.wall_seconds = std::numeric_limits<double>::quiet_NaN();
  r.placement = "plan_order";
  CoreReport core;
  core.core_index = 0;
  core.verdict = CoreVerdict::kPass;
  core.seconds = std::numeric_limits<double>::infinity();
  core.coverage_target = 90.0;
  core.modules.push_back(ModuleVerdict{0x1, 0x1,
                                       std::numeric_limits<double>::quiet_NaN()});
  r.cores.push_back(core);
  TamReport tam;
  tam.busy_seconds = std::numeric_limits<double>::infinity();
  tam.utilization = std::numeric_limits<double>::infinity();
  tam.channel_loads.push_back(ChannelLoad{0, {0}, 100, 100});
  r.tams.push_back(tam);
  const std::string json = r.toJson();
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  // The clamped fields are still present (as finite zeros).
  EXPECT_NE(json.find("\"wall_seconds\": 0.0000"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\": 0.000"), std::string::npos);
}

TEST(JsonFinite, LiveZeroWorkCampaignStaysParseable) {
  // End to end: the fastest real campaign we can run still produces a JSON
  // artifact free of non-finite tokens even if the clock granularity makes
  // wall_seconds 0.
  auto soc = std::make_unique<Soc>("tiny");
  (void)soc->attachCore(makeCore("only", 1));
  SocTestScheduler scheduler(*soc);
  const SessionReport report =
      scheduler.run(TestPlan{}.withPatterns(1).withThreads(1));
  const std::string json = report.toJson();
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace corebist
