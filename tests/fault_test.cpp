// Fault model, collapsing, and both fault-simulation engines.
#include <gtest/gtest.h>

#include <random>

#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"
#include "netlist/builder.hpp"
#include "sim/comb_sim.hpp"

namespace corebist {
namespace {

/// c17-style reference circuit: small enough for brute-force cross-checks.
Netlist makeSmallComb() {
  Netlist nl("c_small");
  Builder b(nl);
  const Bus x = b.input("x", 5);
  const NetId g1 = b.g2(GateType::kNand, x[0], x[2]);
  const NetId g2 = b.g2(GateType::kNand, x[3], x[2]);
  const NetId g3 = b.g2(GateType::kNand, x[1], g2);
  const NetId g4 = b.g2(GateType::kNand, g2, x[4]);
  const NetId o1 = b.g2(GateType::kNand, g1, g3);
  const NetId o2 = b.g2(GateType::kNand, g3, g4);
  b.output("o", Bus{o1, o2});
  return nl;
}

TEST(FaultModel, EnumerationCountsStemsAndBranches) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  const NetId a = b.and2(x[0], x[1]);  // x0,x1 fanout 1
  const NetId y1 = b.not1(a);          // a has fanout 2 -> branches
  const NetId y2 = b.xor2(a, x[0]);    // x0 now fanout 2 as well
  b.output("y", Bus{y1, y2});
  const FaultUniverse u = enumerateStuckAt(nl, /*collapse=*/false);
  // Nets: x0,x1,a,y1,y2 = 5 stems x2 = 10; branches: a@not, a@xor, x0@and,
  // x0@xor = 4 x2 = 8. Total 18.
  EXPECT_EQ(u.uncollapsed, 18u);
}

TEST(FaultModel, CollapseMergesBufferChain) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 1);
  const NetId b1 = b.g1(GateType::kBuf, x[0]);
  const NetId b2 = b.g1(GateType::kBuf, b1);
  const NetId y = b.g1(GateType::kNot, b2);
  b.output("y", Bus{y});
  const FaultUniverse u = enumerateStuckAt(nl);
  // 4 nets x 2 = 8 uncollapsed; BUF/NOT chains collapse everything into the
  // two polarities of a single class pair.
  EXPECT_EQ(u.uncollapsed, 8u);
  EXPECT_EQ(u.faults.size(), 2u);
}

TEST(FaultModel, CollapseAndGateEquivalence) {
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  b.output("y", Bus{b.and2(x[0], x[1])});
  const FaultUniverse u = enumerateStuckAt(nl);
  // Uncollapsed: 3 nets x 2 = 6. AND: in-sa0 (x2) == out-sa0 -> merges two
  // away: 4 collapsed classes.
  EXPECT_EQ(u.uncollapsed, 6u);
  EXPECT_EQ(u.faults.size(), 4u);
}

TEST(FaultModel, TransitionMappingPreservesSites) {
  const Netlist nl = makeSmallComb();
  const FaultUniverse u = enumerateStuckAt(nl);
  const auto tdf = toTransitionFaults(u.faults);
  ASSERT_EQ(tdf.size(), u.faults.size());
  for (std::size_t i = 0; i < tdf.size(); ++i) {
    EXPECT_EQ(tdf[i].net, u.faults[i].net);
    EXPECT_FALSE(isStuckAt(tdf[i].kind));
  }
}

/// Brute-force single-fault simulation for cross-checking CombFaultSim.
std::uint64_t bruteForceDetect(const Netlist& nl, const Fault& f,
                               const PatternBlock& blk,
                               std::span<const NetId> inputs,
                               std::span<const NetId> observed) {
  CombSim good(nl);
  CombSim bad(nl);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    good.set(inputs[i], blk.inputs[i]);
    bad.set(inputs[i], blk.inputs[i]);
  }
  good.eval();
  // Faulty evaluation: emulate by manual gate loop with injection.
  const Levelization lev = levelize(nl);
  auto& val = bad.values();
  const std::uint64_t forced = f.kind == FaultKind::kSa1 ? ~0ull : 0ull;
  if (f.isStem() && nl.driverOf(f.net) == Netlist::kNoDriver) {
    val[f.net] = forced;
  }
  for (const GateId g : lev.order) {
    const Gate& gate = nl.gates()[g];
    std::uint64_t in[3] = {0, 0, 0};
    for (int p = 0; p < gate.nin; ++p) in[p] = val[gate.in[static_cast<std::size_t>(p)]];
    if (!f.isStem() && f.gate == g) in[f.pin] = forced;
    val[gate.out] = evalGateWord(gate.type, in[0], in[1], in[2]);
    if (f.isStem() && gate.out == f.net) val[gate.out] = forced;
  }
  std::uint64_t det = 0;
  for (const NetId o : observed) det |= good.get(o) ^ bad.get(o);
  return det;
}

TEST(CombFaultSim, MatchesBruteForceOnEveryFault) {
  const Netlist nl = makeSmallComb();
  const FaultUniverse u = enumerateStuckAt(nl, /*collapse=*/false);
  const auto inputs = nl.primaryInputs();
  const auto observed = nl.primaryOutputs();
  CombFaultSim fsim(nl, inputs, observed);
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    PatternBlock blk;
    for (std::size_t i = 0; i < inputs.size(); ++i) blk.inputs.push_back(rng());
    fsim.loadBlock(blk);
    for (const Fault& f : u.faults) {
      const auto det = fsim.detect(f);
      EXPECT_EQ(det.word(0), bruteForceDetect(nl, f, blk, inputs, observed))
          << describeFault(nl, f);
      for (int wi = 1; wi < CombFaultSim::kWords; ++wi) {
        EXPECT_EQ(det.word(wi), 0u) << "narrow block leaked into wide lanes";
      }
    }
  }
}

TEST(CombFaultSim, ExhaustivePatternsDetectAllC17Faults) {
  const Netlist nl = makeSmallComb();
  const FaultUniverse u = enumerateStuckAt(nl);
  CombFaultSim fsim(nl, nl.primaryInputs(), nl.primaryOutputs());
  PatternBlock blk;
  // All 32 input combinations in one block.
  blk.inputs.resize(5);
  for (int v = 0; v < 32; ++v) {
    for (int i = 0; i < 5; ++i) {
      if ((v >> i) & 1) blk.inputs[static_cast<std::size_t>(i)] |= 1ull << v;
    }
  }
  blk.count = 32;
  fsim.loadBlock(blk);
  for (const Fault& f : u.faults) {
    EXPECT_TRUE(fsim.detect(f).any())
        << describeFault(nl, f) << " undetected by exhaustive patterns";
  }
}

TEST(CombFaultSim, TransitionNeedsLaunchTransition) {
  // y = x0 AND x1. Slow-to-rise on x0 requires x0: 0 -> 1 with x1 = 1.
  Netlist nl("t");
  Builder b(nl);
  const Bus x = b.input("x", 2);
  b.output("y", Bus{b.and2(x[0], x[1])});
  CombFaultSim fsim(nl, nl.primaryInputs(), nl.primaryOutputs());
  const Fault slow_rise{x[0], Fault::kNoGate, 0, FaultKind::kSlowRise};

  PatternBlock v1, v2;
  // Lane 0: x0 0->1, x1=1 (detect). Lane 1: x0 1->1 (no transition).
  // Lane 2: x0 0->1 but x1=0 (no propagation).
  v1.inputs = {0b010, 0b011};
  v2.inputs = {0b111, 0b011};
  v1.count = v2.count = 3;
  fsim.loadPairBlock(v1, v2);
  EXPECT_EQ(fsim.detect(slow_rise).word(0), 0b001u);
}

/// Sequential circuit with state: 4-bit counter with parity output.
Netlist makeCounterCircuit() {
  Netlist nl("cnt");
  Builder b(nl);
  const Bus en = b.input("en", 1);
  const Bus q = b.counter("q", 4, en[0], b.lo());
  b.output("q", q);
  b.output("par", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

TEST(SeqFaultSim, DetectsCounterFaults) {
  const Netlist nl = makeCounterCircuit();
  const FaultUniverse u = enumerateStuckAt(nl);
  SeqFaultSim fsim(nl);
  // Enable mostly on, with occasional holds so the enable-hold mux paths
  // are exercised too.
  std::vector<std::uint64_t> stim(96, 1);
  for (std::size_t c = 5; c < stim.size(); c += 7) stim[c] = 0;
  SeqFsimOptions opts;
  opts.cycles = 96;
  opts.prepass_cycles = 0;
  const SeqFsimResult r = fsim.run(u.faults, stim, opts);
  // A handful of faults around the tied-off clear path are structurally
  // untestable, so ~90 % is the ceiling here.
  EXPECT_GT(r.coverage(), 85.0);
  EXPECT_EQ(r.total, u.faults.size());
}

TEST(SeqFaultSim, PrepassAndFullRunAgree) {
  const Netlist nl = makeCounterCircuit();
  const FaultUniverse u = enumerateStuckAt(nl);
  SeqFaultSim fsim(nl);
  std::mt19937_64 rng(5);
  std::vector<std::uint64_t> stim(256);
  for (auto& w : stim) w = rng() & 1u;
  SeqFsimOptions with_prepass;
  with_prepass.cycles = 256;
  with_prepass.prepass_cycles = 32;
  SeqFsimOptions without;
  without.cycles = 256;
  without.prepass_cycles = 0;
  const auto r1 = fsim.run(u.faults, stim, with_prepass);
  const auto r2 = fsim.run(u.faults, stim, without);
  ASSERT_EQ(r1.first_detect.size(), r2.first_detect.size());
  for (std::size_t i = 0; i < r1.first_detect.size(); ++i) {
    EXPECT_EQ(r1.first_detect[i], r2.first_detect[i])
        << describeFault(nl, u.faults[i]);
  }
}

TEST(SeqFaultSim, StuckEnableNeverCounts) {
  const Netlist nl = makeCounterCircuit();
  // en stem s-a-0: counter never advances; q outputs diff from good machine.
  const Fault f{nl.primaryInputs()[0], Fault::kNoGate, 0, FaultKind::kSa0};
  SeqFaultSim fsim(nl);
  std::vector<std::uint64_t> stim(16, 1);
  SeqFsimOptions opts;
  opts.cycles = 16;
  opts.prepass_cycles = 0;
  const auto r = fsim.run(std::span<const Fault>(&f, 1), stim, opts);
  ASSERT_EQ(r.first_detect.size(), 1u);
  // Good machine shows q=1 after the first edge; faulty stays 0. The diff
  // is visible from cycle 1 on.
  EXPECT_EQ(r.first_detect[0], 1);
}

TEST(SeqFaultSim, TransitionFaultSlowerThanStuck) {
  const Netlist nl = makeCounterCircuit();
  const FaultUniverse u = enumerateStuckAt(nl);
  const auto tdf = toTransitionFaults(u.faults);
  SeqFaultSim fsim(nl);
  std::vector<std::uint64_t> stim(128, 1);
  SeqFsimOptions opts;
  opts.cycles = 128;
  opts.prepass_cycles = 0;
  const auto rs = fsim.run(u.faults, stim, opts);
  const auto rt = fsim.run(tdf, stim, opts);
  // Transition faults need an activation edge on top of propagation, so
  // coverage can only be <= the stuck-at coverage on this stimulus.
  EXPECT_LE(rt.detected, rs.detected);
  EXPECT_GT(rt.coverage(), 50.0);
}

TEST(SeqFaultSim, WindowMaskMarksDetectionWindows) {
  const Netlist nl = makeCounterCircuit();
  const Fault f{nl.primaryInputs()[0], Fault::kNoGate, 0, FaultKind::kSa0};
  SeqFaultSim fsim(nl);
  std::vector<std::uint64_t> stim(64, 1);
  SeqFsimOptions opts;
  opts.cycles = 64;
  opts.windows = 8;
  const auto r = fsim.run(std::span<const Fault>(&f, 1), stim, opts);
  ASSERT_EQ(r.window_mask.size(), 1u);
  // The stuck enable diverges in (almost) every window.
  EXPECT_GE(std::popcount(r.window_mask[0]), 7);
}

TEST(SeqFaultSim, MisrDetectionTracksOutputDetection) {
  const Netlist nl = makeCounterCircuit();
  const FaultUniverse u = enumerateStuckAt(nl);
  SeqFaultSim fsim(nl);
  std::vector<std::uint64_t> stim(128, 1);
  SeqFsimOptions opts;
  opts.cycles = 128;
  opts.prepass_cycles = 0;
  MisrSpec misr;
  misr.width = 16;
  misr.poly = 0b0000000000101101;  // x^16+x^5+x^3+x^2+1 coefficient mask
  misr.poly |= 1;
  misr.feeds.resize(16);
  const auto& pos = nl.primaryOutputs();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    misr.feeds[i % 16].push_back(pos[i]);
  }
  opts.misr = misr;
  const auto r = fsim.run(u.faults, stim, opts);
  std::size_t misr_detected = 0;
  for (std::size_t i = 0; i < u.faults.size(); ++i) {
    if (r.misr_detect[i]) {
      ++misr_detected;
      // MISR detection implies output detection (no false positives).
      EXPECT_GE(r.first_detect[i], 0);
    }
  }
  // Aliasing is possible but rare: expect nearly all detected faults to
  // also differ in the MISR.
  EXPECT_GE(misr_detected + 2, r.detected);
}

}  // namespace
}  // namespace corebist
