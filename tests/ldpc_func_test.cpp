// LDPC functional layer: code construction, golden decoders, and the serial
// architecture model assembled from the behavioural modules.
#include <gtest/gtest.h>

#include <random>

#include "ldpc/arch/decoder.hpp"
#include "ldpc/code.hpp"
#include "ldpc/msgpass.hpp"

namespace corebist::ldpc {
namespace {

CodeParams smallParams(std::uint64_t seed = 7) {
  CodeParams p;
  p.bit_nodes = 64;
  p.check_nodes = 32;
  p.dv = 3;
  p.seed = seed;
  return p;
}

TEST(LdpcCode, StructuralInvariants) {
  const LdpcCode code(smallParams());
  EXPECT_EQ(code.n(), 64);
  EXPECT_EQ(code.m(), 32);
  EXPECT_EQ(code.k(), 32);
  int edges = 0;
  for (int r = 0; r < code.m(); ++r) {
    EXPECT_GE(static_cast<int>(code.row(r).size()), 2);
    edges += static_cast<int>(code.row(r).size());
    // Sorted, unique, in range.
    for (std::size_t i = 0; i < code.row(r).size(); ++i) {
      EXPECT_LT(code.row(r)[i], code.n());
      if (i > 0) EXPECT_LT(code.row(r)[i - 1], code.row(r)[i]);
    }
  }
  EXPECT_EQ(edges, code.edgeCount());
  // Row/column views agree.
  for (int bit = 0; bit < code.n(); ++bit) {
    for (const int r : code.col(bit)) {
      const auto& row = code.row(r);
      EXPECT_NE(std::find(row.begin(), row.end(), bit), row.end());
    }
  }
  EXPECT_LE(code.maxColDegree(), 4);  // decoder buffer constraint
}

TEST(LdpcCode, RejectsBadParameters) {
  CodeParams p = smallParams();
  p.bit_nodes = 2000;  // > 1024
  EXPECT_THROW(LdpcCode{p}, std::invalid_argument);
  p = smallParams();
  p.check_nodes = 600;  // > 512
  EXPECT_THROW(LdpcCode{p}, std::invalid_argument);
}

TEST(LdpcCode, PaperScaleMaximumConfiguration) {
  // "up to a maximum of 512 check nodes and 1,024 bit nodes"
  CodeParams p;
  p.bit_nodes = 1024;
  p.check_nodes = 512;
  p.dv = 3;
  const LdpcCode code(p);
  EXPECT_EQ(code.n(), 1024);
  EXPECT_EQ(code.m(), 512);
}

class EncodeRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncodeRoundtrip, EncodedWordsSatisfyAllChecks) {
  const LdpcCode code(smallParams(GetParam()));
  std::mt19937_64 rng(GetParam() * 17 + 1);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint8_t> info(static_cast<std::size_t>(code.k()));
    for (auto& b : info) b = static_cast<std::uint8_t>(rng() & 1u);
    const auto word = code.encode(info);
    EXPECT_TRUE(code.checkWord(word));
    // Systematic: info bits preserved.
    for (int i = 0; i < code.k(); ++i) {
      EXPECT_EQ(word[static_cast<std::size_t>(i)], info[static_cast<std::size_t>(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeRoundtrip,
                         ::testing::Values(1, 2, 3, 4, 5));

std::vector<double> llrForWord(const std::vector<std::uint8_t>& word,
                               double strength) {
  std::vector<double> llr(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    llr[i] = word[i] != 0 ? -strength : strength;
  }
  return llr;
}

TEST(MinSum, CleanWordDecodesImmediately) {
  const LdpcCode code(smallParams());
  const auto word = code.encode(std::vector<std::uint8_t>(32, 1));
  const auto res = decodeMinSum(code, llrForWord(word, 4.0));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.word, word);
  EXPECT_EQ(res.iterations, 1);
}

TEST(MinSum, CorrectsFewFlippedBits) {
  const LdpcCode code(smallParams(3));
  std::mt19937_64 rng(123);
  int corrected = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> info(32);
    for (auto& b : info) b = static_cast<std::uint8_t>(rng() & 1u);
    const auto word = code.encode(info);
    auto llr = llrForWord(word, 3.0);
    // Flip 3 random positions with a moderately wrong LLR.
    for (int f = 0; f < 3; ++f) {
      const std::size_t pos = rng() % llr.size();
      llr[pos] = -llr[pos] * 0.5;
    }
    const auto res = decodeMinSum(code, llr);
    if (res.converged && res.word == word) ++corrected;
  }
  EXPECT_GE(corrected, trials * 3 / 4);
}

TEST(MinSumFixed, MatchesFloatOnStrongChannels) {
  const LdpcCode code(smallParams(9));
  std::mt19937_64 rng(77);
  std::vector<std::uint8_t> info(32);
  for (auto& b : info) b = static_cast<std::uint8_t>(rng() & 1u);
  const auto word = code.encode(info);
  std::vector<int> llr8(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    llr8[i] = word[i] != 0 ? -24 : 24;
  }
  const auto res = decodeMinSumFixed(code, llr8);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.word, word);
}

TEST(SatHelpers, ClampAndAdd) {
  EXPECT_EQ(satClamp(200, 8), 127);
  EXPECT_EQ(satClamp(-200, 8), -128);
  EXPECT_EQ(satClamp(100, 8), 100);
  EXPECT_EQ(satAdd(100, 100, 8), 127);
  EXPECT_EQ(satAdd(-100, -100, 8), -128);
  EXPECT_EQ(quantizeLlr(1.0), 8);
  EXPECT_EQ(quantizeLlr(100.0), 127);
}

TEST(SerialDecoder, DecodesCleanWord) {
  const LdpcCode code(smallParams(11));
  SerialDecoder dec(code, 10);
  const auto word = code.encode(std::vector<std::uint8_t>(32, 0));
  std::vector<int> llr8(static_cast<std::size_t>(code.n()), 20);
  const auto res = dec.decode(llr8);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.word, word);
  EXPECT_GT(dec.cyclesSimulated(), 0u);
}

TEST(SerialDecoder, CorrectsErrorsLikeTheGoldenDecoder) {
  const LdpcCode code(smallParams(13));
  SerialDecoder dec(code, 20);
  std::mt19937_64 rng(31);
  int ok = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> info(32);
    for (auto& b : info) b = static_cast<std::uint8_t>(rng() & 1u);
    const auto word = code.encode(info);
    std::vector<int> llr8(word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
      llr8[i] = word[i] != 0 ? -20 : 20;
    }
    // Two weakly wrong bits.
    for (int f = 0; f < 2; ++f) {
      const std::size_t pos = rng() % llr8.size();
      llr8[pos] = llr8[pos] > 0 ? -6 : 6;
    }
    const auto res = dec.decode(llr8);
    if (res.converged && res.word == word) ++ok;
  }
  EXPECT_GE(ok, trials * 2 / 3);
}

TEST(SerialDecoder, CycleCountScalesWithEdges) {
  const LdpcCode code(smallParams(17));
  SerialDecoder dec(code, 1);
  std::vector<int> llr8(static_cast<std::size_t>(code.n()), 15);
  (void)dec.decode(llr8);
  // One iteration serially processes every edge in both passes plus per-node
  // overhead: cycles must exceed 2x edges and stay well under 10x.
  const std::size_t edges = static_cast<std::size_t>(code.edgeCount());
  EXPECT_GT(dec.cyclesSimulated(), 2 * edges);
  EXPECT_LT(dec.cyclesSimulated(), 10 * edges);
}

TEST(SerialDecoder, StatementCoverageAccumulates) {
  StatementCoverage bn_cov(BitNodeModel::kNumStatements);
  StatementCoverage cn_cov(CheckNodeModel::kNumStatements);
  const LdpcCode code(smallParams(19));
  SerialDecoder dec(code, 5, &bn_cov, &cn_cov);
  std::vector<int> llr8(static_cast<std::size_t>(code.n()), 12);
  llr8[3] = -5;
  llr8[10] = -2;
  (void)dec.decode(llr8);
  // Decoding exercises a solid fraction of both models' statements.
  EXPECT_GT(bn_cov.coverage(), 0.4);
  EXPECT_GT(cn_cov.coverage(), 0.4);
}

}  // namespace
}  // namespace corebist::ldpc
