// CampaignService: the resident multi-tenant engine. Pins the PR's
// acceptance properties — fingerprints byte-identical across the one-shot
// facade, any pool size and any multi-tenant interleaving; artifact reuse
// fingerprint-invisible; typed admission control that never blocks the
// reactor; observer detach on completion; streamed wire frames that
// reconstruct the report; and a multi-tenant soak that leaks neither
// threads nor campaigns. Runs under TSan in CI (no fork in this file) and
// under the chaos matrix (channel failpoints within the retry budget are
// fingerprint-invisible by design).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <random>
#include <semaphore>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "core/soc.hpp"
#include "netlist/builder.hpp"
#include "service/artifacts.hpp"
#include "service/report_stream.hpp"
#include "service/service.hpp"

namespace corebist {
namespace {

Netlist makeToyModule(int twist) {
  Netlist nl("toy" + std::to_string(twist));
  Builder b(nl);
  const Bus x = b.input("x", 12);
  const Bus q = b.state("q", 12);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1 + twist % 3)));
  b.output("y", q);
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

/// A 6-core SoC: cores 1 and 4 defective, the rest healthy.
std::unique_ptr<Soc> makeSoc() {
  auto soc = std::make_unique<Soc>("service_soc");
  for (int c = 0; c < 6; ++c) {
    auto core = std::make_unique<WrappedCore>("toy" + std::to_string(c));
    core->addModule(makeToyModule(c));
    soc->attachCore(std::move(core));
  }
  soc->core(1).injectDefect(0, 3, GateType::kXnor);
  soc->core(4).injectDefect(0, 5, GateType::kNand);
  return soc;
}

/// Mixed campaign: pass, mismatch, forced timeout, retried timeout.
TestPlan makeMixedPlan() {
  TestPlan plan = TestPlan{}.withPatterns(300);
  plan.addCore(0).addCore(1);
  plan.addCore(CorePlan{.core_index = 2,
                        .patterns = 500,
                        .warmup_idle = 16,
                        .poll_budget = 3,
                        .poll_idle = 8});
  plan.addCore(3).addCore(4);
  plan.addCore(CorePlan{.core_index = 5,
                        .patterns = 500,
                        .warmup_idle = 16,
                        .poll_budget = 2,
                        .poll_idle = 8,
                        .max_retries = 2});
  return plan;
}

TestPlan makeSubsetPlan(std::vector<int> cores) {
  TestPlan plan = TestPlan{}.withPatterns(200);
  for (const int c : cores) plan.addCore(c);
  return plan;
}

/// One-shot reference fingerprint on a pristine SoC.
std::string referenceFingerprint(const TestPlan& plan) {
  auto soc = makeSoc();
  TestPlan serial = plan;
  serial.num_threads = 1;
  return SocTestScheduler(*soc).run(serial).fingerprint();
}

int threadsOfSelf() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(8));
    }
  }
  return -1;
}

TEST(CampaignService, FingerprintMatchesOneShotAcrossPoolSizes) {
  const std::string reference = referenceFingerprint(makeMixedPlan());
  ASSERT_NE(reference.find("\"verdict\": \"timeout\""), std::string::npos);
  ASSERT_NE(reference.find("\"verdict\": \"signature_mismatch\""),
            std::string::npos);

  for (const int workers : {1, 2, 8}) {
    auto soc = makeSoc();
    CampaignServiceConfig cfg;
    cfg.workers = workers;
    CampaignService service(*soc, cfg);
    const SessionReport report =
        service.await(service.submit(makeMixedPlan()));
    EXPECT_EQ(report.fingerprint(), reference) << "workers=" << workers;
  }
}

TEST(CampaignService, MultiTenantInterleavingIsFingerprintInvisible) {
  // Three distinct plans, each with a one-shot reference; submissions from
  // three tenants in a seeded-shuffled order, twice over, on a two-worker
  // reactor. Every report must match its plan's reference regardless of
  // how the reactor interleaved the campaigns.
  const std::vector<TestPlan> plans = {
      makeSubsetPlan({0, 1, 2}), makeSubsetPlan({3, 4, 5}), makeMixedPlan()};
  std::vector<std::string> references;
  references.reserve(plans.size());
  for (const TestPlan& p : plans) references.push_back(referenceFingerprint(p));

  auto soc = makeSoc();
  CampaignServiceConfig cfg;
  cfg.workers = 2;
  CampaignService service(*soc, cfg);

  std::vector<std::size_t> order;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t p = 0; p < plans.size(); ++p) order.push_back(p);
  }
  std::mt19937 rng(0xC0B157);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<std::pair<CampaignHandle, std::size_t>> submitted;
  for (const std::size_t p : order) {
    SubmitOptions opts;
    opts.tenant = "tenant" + std::to_string(p);
    submitted.emplace_back(service.submit(plans[p], opts), p);
  }
  for (const auto& [handle, p] : submitted) {
    EXPECT_EQ(service.await(handle).fingerprint(), references[p])
        << "plan " << p;
  }
  // Repeated campaigns over one resident service share artifacts.
  EXPECT_GT(service.artifactStats().hits, 0u);
}

/// Observer that parks the worker inside the first onCoreStart until the
/// test releases it — makes "campaign X is definitely in flight" a
/// deterministic fact instead of a race.
class GateObserver final : public SessionObserver {
 public:
  std::binary_semaphore started{0};
  std::binary_semaphore release{0};
  void onCoreStart(int, int) override {
    if (!first_.exchange(false)) return;
    started.release();
    release.acquire();
  }

 private:
  std::atomic<bool> first_{true};
};

TEST(CampaignService, AdmissionRejectsOverQuotaWithTypedErrors) {
  auto soc = makeSoc();
  CampaignServiceConfig cfg;
  cfg.workers = 1;
  cfg.tenant_quotas["limited"] = TenantQuota{.max_in_flight = 1};
  cfg.tenant_quotas["starved"] =
      TenantQuota{.max_predicted_tcks = 10};  // below any real campaign
  CampaignService service(*soc, cfg);

  GateObserver gate;
  SubmitOptions first;
  first.tenant = "limited";
  first.observer = &gate;
  const CampaignHandle held = service.submit(makeSubsetPlan({0}), first);
  gate.started.acquire();  // the campaign is running, not merely queued

  SubmitOptions second;
  second.tenant = "limited";
  try {
    (void)service.submit(makeSubsetPlan({3}), second);
    FAIL() << "expected the in-flight quota to reject";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionError::Reason::kInFlightQuota);
    EXPECT_EQ(e.tenant(), "limited");
    EXPECT_NE(std::string(e.what()).find("in flight"), std::string::npos);
  }

  SubmitOptions starved;
  starved.tenant = "starved";
  try {
    (void)service.submit(makeSubsetPlan({3}), starved);
    FAIL() << "expected the predicted-TCK quota to reject";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionError::Reason::kPredictedTckQuota);
    EXPECT_EQ(e.tenant(), "starved");
  }

  // Unquoted tenants are never throttled, and a rejection charges nothing:
  // once the held campaign finishes, "limited" admits again.
  const CampaignHandle other = service.submit(makeSubsetPlan({5}));
  gate.release.release();
  EXPECT_TRUE(service.await(held).pass());
  (void)service.await(other);
  SubmitOptions again;
  again.tenant = "limited";
  EXPECT_TRUE(service.await(service.submit(makeSubsetPlan({3}), again)).pass());
}

TEST(CampaignService, CancelSkipsQueuedCampaigns) {
  auto soc = makeSoc();
  CampaignServiceConfig cfg;
  cfg.workers = 1;  // c2 is provably queued behind c1's units
  CampaignService service(*soc, cfg);

  GateObserver gate;
  SubmitOptions blocked;
  blocked.observer = &gate;
  const CampaignHandle c1 = service.submit(makeSubsetPlan({0}), blocked);
  gate.started.acquire();
  const CampaignHandle c2 = service.submit(makeSubsetPlan({3, 5}));

  EXPECT_EQ(service.status(c2).state, CampaignState::kQueued);
  EXPECT_TRUE(service.cancel(c2));

  gate.release.release();
  EXPECT_TRUE(service.await(c1).pass());
  EXPECT_THROW((void)service.await(c2), CampaignCancelled);
  const CampaignStatus s = service.status(c2);
  EXPECT_EQ(s.state, CampaignState::kCancelled);
  EXPECT_EQ(s.cores_done, 0);  // nothing ran
  EXPECT_FALSE(service.cancel(c2));  // already terminal
  EXPECT_STREQ(campaignStateName(s.state), "cancelled");

  EXPECT_THROW((void)service.status(CampaignHandle{9999}), std::out_of_range);
}

class CountingObserver final : public SessionObserver {
 public:
  std::atomic<int> campaign_start{0};
  std::atomic<int> campaign_finish{0};
  std::atomic<int> channel_placed{0};
  std::atomic<int> core_finish{0};
  void onCampaignStart(int, int) override { ++campaign_start; }
  void onChannelPlaced(int, int, const std::vector<int>&,
                       std::size_t) override {
    ++channel_placed;
  }
  void onCoreFinish(const CoreReport&) override { ++core_finish; }
  void onCampaignFinish(const SessionReport&) override { ++campaign_finish; }
};

TEST(CampaignService, ObserverIsDetachedBeforeAwaitReturns) {
  auto soc = makeSoc();
  CampaignServiceConfig cfg;
  cfg.workers = 2;
  CampaignService service(*soc, cfg);

  auto observer = std::make_unique<CountingObserver>();
  SubmitOptions opts;
  opts.observer = observer.get();
  const CampaignHandle h = service.submit(makeMixedPlan(), opts);
  const SessionReport report = service.await(h);

  // The full event stream arrived exactly once...
  EXPECT_EQ(observer->campaign_start.load(), 1);
  EXPECT_EQ(observer->campaign_finish.load(), 1);
  EXPECT_EQ(observer->core_finish.load(), 6);
  EXPECT_GT(observer->channel_placed.load(), 0);
  EXPECT_EQ(report.cores.size(), 6u);
  EXPECT_EQ(service.status(h).state, CampaignState::kDone);

  // ...and the registration is detached: destroying the observer now is
  // safe by contract (finalize cleared it before publishing the terminal
  // state await() observed). A dangling callback would fire into freed
  // memory here — ASan/TSan in CI would catch it.
  observer.reset();
  (void)service.await(service.submit(makeSubsetPlan({0})));
}

TEST(CampaignService, ArtifactReuseIsFingerprintInvisible) {
  // Coverage probes exercise every cached product: lint, fault universe,
  // golden signature and coverage value.
  TestPlan plan = TestPlan{}.withPatterns(128);
  plan.coverage_target = 5.0;

  auto ref_soc = makeSoc();
  TestPlan serial = plan;
  serial.num_threads = 1;
  const std::string reference =
      SocTestScheduler(*ref_soc).run(serial).fingerprint();

  auto soc = makeSoc();
  CampaignServiceConfig cfg;
  cfg.workers = 2;
  CampaignService service(*soc, cfg);

  const SessionReport cold = service.await(service.submit(plan));
  const ArtifactStats after_cold = service.artifactStats();
  const SessionReport warm = service.await(service.submit(plan));
  const ArtifactStats after_warm = service.artifactStats();

  EXPECT_EQ(cold.fingerprint(), reference);
  EXPECT_EQ(warm.fingerprint(), reference);
  // The cold run computed (misses); the warm run reused (hits grew, misses
  // did not).
  EXPECT_GT(after_cold.misses, 0u);
  EXPECT_GT(after_warm.hits, after_cold.hits);
  EXPECT_EQ(after_warm.misses, after_cold.misses);
  EXPECT_GT(after_warm.hitRate(), 0.0);

  // The memoized golden equals the direct good-machine simulation.
  EXPECT_EQ(service.artifacts()->goldenSignature(soc->core(0), 0, 128),
            soc->core(0).goldenSignature(0, 128));
}

TEST(CampaignService, PredictRacesRunSafely) {
  // predict() resolves and places against live SoC topology while workers
  // drive cores through replica channels. The forecast must be stable and
  // the interleaving TSan-clean (this test runs under the CI TSan job).
  auto soc = makeSoc();
  CampaignServiceConfig cfg;
  cfg.workers = 2;
  CampaignService service(*soc, cfg);

  const PlanForecast baseline = service.predict(makeMixedPlan());
  ASSERT_GT(baseline.predicted_total_tcks, 0u);

  std::vector<CampaignHandle> handles;
  for (int i = 0; i < 3; ++i) handles.push_back(service.submit(makeMixedPlan()));
  std::atomic<bool> mismatch{false};
  std::thread predictor([&] {
    for (int i = 0; i < 20; ++i) {
      const PlanForecast f = service.predict(makeMixedPlan());
      if (f.predicted_total_tcks != baseline.predicted_total_tcks ||
          f.predicted_makespan_tcks != baseline.predicted_makespan_tcks) {
        mismatch.store(true);
      }
    }
  });
  for (const CampaignHandle h : handles) (void)service.await(h);
  predictor.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(CampaignService, StreamedFramesReconstructTheReport) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);

  auto soc = makeSoc();
  CampaignServiceConfig cfg;
  cfg.workers = 2;
  CampaignService service(*soc, cfg);

  SubmitOptions opts;
  opts.stream_fd = fds[1];
  const CampaignHandle h = service.submit(makeMixedPlan(), opts);
  const SessionReport report = service.await(h);
  close(fds[1]);  // campaign terminal => no more frames

  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (readStreamEvent(fds[0], ev)) events.push_back(ev);
  close(fds[0]);

  ASSERT_FALSE(events.empty());
  for (const StreamEvent& e : events) EXPECT_EQ(e.campaign_id, h.id);
  EXPECT_EQ(events.front().kind, StreamEventKind::kCampaignStart);
  EXPECT_EQ(events.back().kind, StreamEventKind::kCampaignFinish);

  int core_finish = 0;
  int placed = 0;
  for (const StreamEvent& e : events) {
    if (e.kind == StreamEventKind::kCoreFinish) ++core_finish;
    if (e.kind == StreamEventKind::kChannelPlaced) ++placed;
  }
  EXPECT_EQ(core_finish, 6);
  EXPECT_GT(placed, 0);

  // The incremental core frames carry the exact per-core JSON of the final
  // report, and the finish frame is the whole report verbatim.
  std::vector<std::string> expected_cores;
  for (const CoreReport& c : report.cores) {
    expected_cores.push_back(coreReportJson(c, true));
  }
  for (const StreamEvent& e : events) {
    if (e.kind != StreamEventKind::kCoreFinish) continue;
    EXPECT_NE(std::find(expected_cores.begin(), expected_cores.end(), e.json),
              expected_cores.end())
        << e.json;
  }
  EXPECT_EQ(events.back().json, report.toJson());
  EXPECT_STREQ(streamEventKindName(events.back().kind), "campaign_finish");
}

TEST(CampaignService, EmptyCampaignCompletesImmediately) {
  Soc soc("empty_soc");
  CampaignService service(soc);
  const CampaignHandle h = service.submit(TestPlan{});
  const SessionReport report = service.await(h);
  EXPECT_TRUE(report.cores.empty());
  EXPECT_EQ(service.status(h).state, CampaignState::kDone);
}

TEST(CampaignService, ServiceSoakLeaksNothing) {
  // N tenants x M campaigns over a small reactor; every fingerprint equals
  // its reference and the pool's threads are all joined at scope exit.
  // The CI soak job runs this with COREBIST_FAILPOINTS channel chaos armed
  // (within the retry budget) — recovery is fingerprint-invisible.
  const std::vector<TestPlan> plans = {
      makeSubsetPlan({0, 1}), makeSubsetPlan({2, 3}), makeMixedPlan()};
  std::vector<std::string> references;
  references.reserve(plans.size());
  for (const TestPlan& p : plans) references.push_back(referenceFingerprint(p));

  const int threads_before = threadsOfSelf();
  auto soc = makeSoc();
  {
    CampaignServiceConfig cfg;
    cfg.workers = 2;
    CampaignService service(*soc, cfg);
    std::vector<std::pair<CampaignHandle, std::size_t>> submitted;
    for (int round = 0; round < 4; ++round) {
      for (std::size_t p = 0; p < plans.size(); ++p) {
        SubmitOptions opts;
        opts.tenant = "tenant" + std::to_string(p);
        submitted.emplace_back(service.submit(plans[p], opts), p);
      }
    }
    service.drain();
    for (const auto& [handle, p] : submitted) {
      EXPECT_EQ(service.await(handle).fingerprint(), references[p])
          << "plan " << p;
      EXPECT_EQ(service.status(handle).state, CampaignState::kDone);
    }
    EXPECT_GT(service.artifactStats().hitRate(), 0.0);
  }
  // The reactor joined its pool on destruction: no leaked threads.
  EXPECT_EQ(threadsOfSelf(), threads_before);
}

TEST(CampaignService, DestructorCancelsUnfinishedCampaigns) {
  auto soc = makeSoc();
  GateObserver gate;
  auto service = std::make_unique<CampaignService>(
      *soc, CampaignServiceConfig{.workers = 1});
  SubmitOptions blocked;
  blocked.observer = &gate;
  (void)service->submit(makeSubsetPlan({0}), blocked);
  gate.started.acquire();
  const CampaignHandle queued = service->submit(makeSubsetPlan({3}));
  EXPECT_EQ(service->status(queued).state, CampaignState::kQueued);
  gate.release.release();
  service.reset();  // dtor: cancel queued, drain, join — must not hang
}

TEST(StreamObserver, ConcurrentLinesNeverShear) {
  // Four threads hammer one labeled StreamObserver; every emitted line must
  // come out whole — single-write emission under the member mutex — and
  // carry the campaign label prefix.
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  StreamObserver observer(tmp, "svc1");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&observer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        observer.onChannelPlaced(t, i, {1, 2, 3}, 1234);
        CoreReport r;
        r.core_index = t * 1000 + i;
        r.core_name = "core";
        observer.onCoreFinish(r);
      }
    });
  }
  for (std::thread& th : pool) th.join();

  std::rewind(tmp);
  std::ostringstream content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, tmp)) > 0) {
    content.write(buf, static_cast<std::streamsize>(n));
  }
  std::fclose(tmp);

  std::istringstream lines(content.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_EQ(line.rfind("[svc1] [", 0), 0u) << "sheared line: " << line;
    // A sheared write would splice one line into another: every line has
    // exactly one label prefix.
    EXPECT_EQ(line.find("[svc1] ", 1), std::string::npos) << line;
  }
  EXPECT_EQ(count, kThreads * kPerThread * 2);
}

}  // namespace
}  // namespace corebist
