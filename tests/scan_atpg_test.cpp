// Scan insertion, the full-scan view, PODEM and the ATPG drivers.
#include <gtest/gtest.h>

#include <random>

#include "atpg/atpg.hpp"
#include "atpg/podem.hpp"
#include "fault/comb_fsim.hpp"
#include "ldpc/gatelevel.hpp"
#include "netlist/builder.hpp"
#include "scan/scan.hpp"
#include "sim/seq_sim.hpp"

namespace corebist {
namespace {

Netlist makeSeqModule() {
  // 8-bit accumulating datapath with a comparator: enough state and
  // random-resistant logic to exercise ATPG meaningfully.
  Netlist nl("seqmod");
  Builder b(nl);
  const Bus x = b.input("x", 8);
  const Bus en = b.input("en", 1);
  const Bus acc = b.state("acc", 8);
  b.connectEn(acc, b.add(acc, x), en[0]);
  b.output("acc", acc);
  b.output("hit", Bus{b.eqConst(acc, 0xA5)});
  nl.validate();
  return nl;
}

TEST(Scan, ViewShapesAndCycleModel) {
  const Netlist nl = makeSeqModule();
  const ScanView view = makeScanView(nl);
  EXPECT_EQ(view.chains.size(), 1u);
  EXPECT_EQ(view.longestChain(), 8);
  EXPECT_EQ(view.inputs.size(), 9u + 8u);    // PIs + PPIs
  EXPECT_EQ(view.observed.size(), 9u + 8u);  // POs + PPOs
  // patterns*(L+1)+L
  EXPECT_EQ(view.testCycles(10), 10u * 9u + 8u);
  EXPECT_EQ(view.testCyclesTransition(10), 10u * 10u + 8u);
}

TEST(Scan, ChainPartitioningLikeThePaper) {
  // CONTROL_UNIT: 42 cells in chains of 14 and 28.
  const Netlist cu = ldpc::buildControlUnit();
  const ScanView view = makeScanView(cu, {14, 28});
  ASSERT_EQ(view.chains.size(), 2u);
  EXPECT_EQ(view.chains[0].size(), 14u);
  EXPECT_EQ(view.chains[1].size(), 28u);
  EXPECT_EQ(view.longestChain(), 28);
  EXPECT_THROW(makeScanView(cu, {14, 27}), std::invalid_argument);
}

TEST(Scan, ScannedModuleShiftsLikeAChain) {
  const Netlist nl = makeSeqModule();
  const Netlist scanned = buildScannedModule(nl);
  // Fault universe grows: the scan muxes add sites (paper: 7,532 -> 7,836).
  EXPECT_GT(enumerateStuckAt(scanned).faults.size(),
            enumerateStuckAt(nl).faults.size());

  // Shift a pattern through scan_in and verify it appears in the flops.
  SeqSim sim(scanned);
  sim.reset();
  const Bus se = scanned.findPort("scan_en")->bits;
  const Bus si = scanned.findPort("scan_in_0")->bits;
  sim.comb().setBusBroadcast(scanned.findPort("x")->bits, 0);
  sim.comb().setBusBroadcast(scanned.findPort("en")->bits, 0);
  sim.comb().setBusBroadcast(se, 1);
  const unsigned pattern = 0xB7;
  for (int i = 7; i >= 0; --i) {
    sim.comb().setBusBroadcast(si, (pattern >> i) & 1u);
    sim.step();
  }
  sim.evalComb();
  EXPECT_EQ(sim.comb().getBusLane(scanned.findPort("acc")->bits, 0), pattern);
}

TEST(Podem, GeneratesTestsThatTheFaultSimulatorConfirms) {
  const Netlist nl = makeSeqModule();
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(nl);
  // Build the view against the scanned netlist's nets.
  const ScanView sview = [&] {
    ScanView v = makeScanView(scanned);
    return v;
  }();
  const FaultUniverse u = enumerateStuckAt(scanned);
  Podem podem(scanned, sview.inputs, sview.observed);
  CombFaultSim fsim(scanned, sview.inputs, sview.observed);
  std::mt19937_64 rng(9);
  int generated = 0;
  int confirmed = 0;
  for (std::size_t i = 0; i < u.faults.size(); i += 4) {
    const auto test = podem.generate(u.faults[i]);
    if (!test.has_value()) continue;
    ++generated;
    PatternBlock blk;
    blk.inputs.resize(sview.inputs.size());
    for (std::size_t j = 0; j < test->size(); ++j) {
      const bool bit =
          (*test)[j] == Tv::kX ? (rng() & 1u) != 0 : (*test)[j] == Tv::k1;
      blk.inputs[j] = broadcast(bit);
    }
    blk.count = 1;
    fsim.loadBlock(blk);
    if (fsim.detect(u.faults[i]).word(0) & 1u) ++confirmed;
  }
  EXPECT_GT(generated, 20);
  EXPECT_EQ(confirmed, generated)
      << "every PODEM test must be confirmed by fault simulation";
  (void)view;
}

TEST(FullScanAtpg, HighCoverageOnDatapathModule) {
  const Netlist nl = makeSeqModule();
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(scanned);
  const FaultUniverse u = enumerateStuckAt(scanned);
  FullScanAtpgOptions opts;
  opts.podem_budget_seconds = 5.0;
  const FullScanAtpgResult res =
      runFullScanAtpg(scanned, view, u.faults, opts);
  EXPECT_GT(res.coverage(), 95.0);
  EXPECT_GT(res.patterns, 0u);
  EXPECT_EQ(res.test_cycles, view.testCycles(res.patterns));
}

TEST(FullScanAtpg, TransitionCoverageBelowStuckAt) {
  const Netlist nl = makeSeqModule();
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(scanned);
  const FaultUniverse u = enumerateStuckAt(scanned);
  const auto tdf = toTransitionFaults(u.faults);
  FullScanAtpgOptions opts;
  opts.podem_budget_seconds = 5.0;
  const auto saf = runFullScanAtpg(scanned, view, u.faults, opts);
  const auto tdfr = runFullScanTransition(scanned, view, tdf, opts);
  EXPECT_LT(tdfr.coverage(), saf.coverage());
  EXPECT_GT(tdfr.coverage(), 40.0);
}

TEST(SeqAtpg, FindsFaultsWithoutScan) {
  const Netlist nl = makeSeqModule();
  const FaultUniverse u = enumerateStuckAt(nl);
  SeqAtpgOptions opts;
  opts.sequence_cycles = 1024;
  opts.candidates = 3;
  const SeqAtpgResult res = runSequentialAtpg(nl, u.faults, opts);
  EXPECT_GT(res.coverage(), 60.0);
  EXPECT_LE(res.effective_cycles,
            static_cast<std::size_t>(opts.sequence_cycles));
  EXPECT_FALSE(res.best_sequence.empty());
}

}  // namespace
}  // namespace corebist
