// Diagnosis (equivalent fault classes), evaluation flows (Fig. 3/4 loops)
// and the synthesis-side analyses (area, STA).
#include <gtest/gtest.h>

#include "bist/engine.hpp"
#include "diag/diagnosis.hpp"
#include "eval/coverage.hpp"
#include "eval/flow.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"
#include "ldpc/arch/adapters.hpp"
#include "ldpc/gatelevel.hpp"
#include "netlist/builder.hpp"
#include "synth/area.hpp"
#include "synth/sta.hpp"

namespace corebist {
namespace {

TEST(Diagnosis, ClassPartitionBasics) {
  std::vector<Syndrome> syn = {
      {{0b0011}},           // class A (2 members)
      {{0b0011}},
      {{0b0100}},           // class B (1 member)
      {{}},                 // undetected: excluded
      {{0b0011, 0b1}},      // different length -> different class
      {{0}},                // all-zero word == empty -> undetected
  };
  const EquivalenceClasses e = analyzeSyndromes(syn);
  EXPECT_EQ(e.undetected, 2u);
  EXPECT_EQ(e.analyzed, 4u);
  EXPECT_EQ(e.num_classes, 3u);
  EXPECT_EQ(e.max_size, 2u);
  EXPECT_DOUBLE_EQ(e.mean_size, 4.0 / 3.0);
  ASSERT_GE(e.histogram.size(), 2u);
  EXPECT_EQ(e.histogram[0], 2u);  // two singleton classes
  EXPECT_EQ(e.histogram[1], 1u);  // one pair
}

TEST(Diagnosis, PatternListNormalization) {
  // Same detection set in different order -> same syndrome.
  const auto s = syndromesFromPatternLists({{5, 70}, {70, 5}, {5}});
  EXPECT_EQ(s[0], s[1]);
  EXPECT_NE(s[0], s[2]);
}

TEST(Diagnosis, WindowSyndromesSeparateFaults) {
  // A counter's enable-stuck and a high-bit-stuck produce different window
  // patterns, so the matrix separates them.
  Netlist nl("t");
  Builder b(nl);
  const Bus en = b.input("en", 1);
  const Bus q = b.counter("q", 6, en[0], b.lo());
  b.output("q", q);
  nl.validate();
  const FaultUniverse u = enumerateStuckAt(nl);
  SeqFaultSim fsim(nl);
  std::vector<std::uint64_t> stim(256, 1);
  for (std::size_t c = 3; c < stim.size(); c += 5) stim[c] = 0;
  SeqFsimOptions o;
  o.cycles = 256;
  o.windows = 32;
  const auto r = fsim.run(u.faults, stim, o);
  const auto e = analyzeSyndromes(syndromesFromWindows(r.window_mask));
  EXPECT_GT(e.analyzed, u.faults.size() / 2);
  EXPECT_GT(e.num_classes, 4u);
}

TEST(Diagnosis, SignatureSyndromesAreFinerThanWindowMasks) {
  const Netlist nl = ldpc::buildControlUnit();
  const FaultUniverse u = enumerateStuckAt(nl);
  BistEngine engine;
  const int m = engine.attachModule(nl);
  const auto stim = engine.stimulus(m, 512);
  SeqFaultSim fsim(nl);
  SeqFsimOptions o;
  o.cycles = 512;
  o.windows = 32;
  o.misr = makeMisrSpec(nl.primaryOutputs(), 16);
  const auto r = fsim.run(u.faults, stim, o);
  const auto coarse = analyzeSyndromes(syndromesFromWindows(r.window_mask));
  std::vector<Syndrome> fine(u.faults.size());
  for (std::size_t i = 0; i < u.faults.size(); ++i) {
    fine[i].words.assign(
        r.window_sig.begin() +
            static_cast<std::ptrdiff_t>(i) * r.sig_words_per_fault,
        r.window_sig.begin() +
            static_cast<std::ptrdiff_t>(i + 1) * r.sig_words_per_fault);
  }
  const auto fine_e = analyzeSyndromes(fine);
  // Signature values carry strictly more information than mismatch bits.
  EXPECT_GE(fine_e.num_classes, coarse.num_classes);
  EXPECT_LE(fine_e.max_size, coarse.max_size);
}

TEST(Diagnosis, CandidateScoringRanksByHammingDistance) {
  const std::vector<Syndrome> dict = {
      {{0b1100}},        // distance 2 to observed
      {{0b1010}},        // distance 0 (the culprit's class)
      {{0b1010, 0b1}},   // extra word -> distance 1
      {{0}},             // distance 2
  };
  const Syndrome observed{{0b1010}};
  const auto scores = scoreCandidates(dict, observed, 3);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].fault, 1u);
  EXPECT_EQ(scores[0].distance, 0);
  EXPECT_EQ(scores[1].fault, 2u);
  EXPECT_EQ(scores[1].distance, 1);
  EXPECT_EQ(scores[2].distance, 2);
}

TEST(Diagnosis, DictionarySyndromesLocateAnInjectedFault) {
  // Closed-loop diagnosis over the kernel: build a dictionary, replay one
  // fault's own syndrome as the "tester observation", and the top-ranked
  // candidate class must contain that fault at distance 0.
  const Netlist nl = ldpc::buildBitNode();
  const FaultUniverse u = enumerateStuckAt(nl);
  SeqFaultSim fsim(nl);
  BistEngine engine;
  const int m = engine.attachModule(nl);
  const auto stim = engine.stimulus(m, 256);
  const CyclePatternSource patterns(stim, nl.primaryInputs().size());
  const auto dict = dictionarySyndromes(fsim, u.faults, patterns, 256, 4);
  ASSERT_EQ(dict.size(), u.faults.size());
  // Pick the first detected fault as the culprit.
  std::size_t culprit = dict.size();
  for (std::size_t i = 0; i < dict.size(); ++i) {
    if (!dict[i].empty()) {
      culprit = i;
      break;
    }
  }
  ASSERT_LT(culprit, dict.size());
  const auto scores = scoreCandidates(dict, dict[culprit], 5);
  ASSERT_FALSE(scores.empty());
  EXPECT_EQ(scores.front().distance, 0);
  bool culprit_in_class = false;
  for (const auto& s : scores) {
    if (s.distance == 0 && s.fault == culprit) culprit_in_class = true;
  }
  EXPECT_TRUE(culprit_in_class);
}

TEST(StatementCoverage, RecorderSemantics) {
  StatementCoverage cov(4);
  EXPECT_DOUBLE_EQ(cov.coverage(), 0.0);
  cov.hit(0);
  cov.hit(0);
  cov.hit(2);
  cov.hit(99);  // out of range: ignored
  EXPECT_EQ(cov.covered(), 2);
  EXPECT_EQ(cov.hitCount(0), 2u);
  EXPECT_DOUBLE_EQ(cov.coverage(), 0.5);
  cov.clear();
  EXPECT_EQ(cov.covered(), 0);
}

TEST(Flows, Step1MonotoneAndSaturating) {
  const Netlist cu = ldpc::buildControlUnit();
  BistEngine engine;
  const int m = engine.attachModule(cu);
  const auto stim = engine.stimulus(m, 512);
  auto adapter = ldpc::makeControlUnitAdapter();
  const int cps[] = {16, 64, 256, 512};
  const Step1Result r = runStep1Loop(*adapter, cu, stim, cps);
  ASSERT_EQ(r.points.size(), 4u);
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    EXPECT_GE(r.points[i].statement_coverage,
              r.points[i - 1].statement_coverage);
    EXPECT_GE(r.points[i].toggle_activity, r.points[i - 1].toggle_activity);
  }
  EXPECT_GT(r.points.back().statement_coverage, 0.2);
  EXPECT_GT(r.points.back().toggle_activity, 0.2);
}

TEST(Flows, Step2CurveIsMonotoneAndEndsAtFinalCoverage) {
  const Netlist bn = ldpc::buildBitNode();
  const FaultUniverse u = enumerateStuckAt(bn);
  BistEngine engine;
  const int m = engine.attachModule(bn);
  const auto stim = engine.stimulus(m, 512);
  const int cps[] = {64, 128, 256, 512};
  const Step2Result r = runStep2Loop(bn, u.faults, stim, cps, 99.0);
  ASSERT_EQ(r.points.size(), 4u);
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    EXPECT_GE(r.points[i].fault_coverage, r.points[i - 1].fault_coverage);
  }
  EXPECT_NEAR(r.points.back().fault_coverage, r.final_coverage, 1e-9);
  EXPECT_LT(r.patterns_at_target, 0);  // 99 % is out of reach at 512
}

TEST(Synth, AreaScalesWithStructure) {
  const TechLib lib = TechLib::generic130nm();
  Netlist small("s");
  {
    Builder b(small);
    b.output("y", b.add(b.input("a", 4), b.input("b", 4)));
  }
  Netlist big("b");
  {
    Builder b(big);
    b.output("y", b.add(b.input("a", 16), b.input("b", 16)));
  }
  const auto rs = reportArea(small, lib);
  const auto rb = reportArea(big, lib);
  EXPECT_GT(rb.total_um2, rs.total_um2);
  EXPECT_GT(rb.total_um2, 3.0 * rs.total_um2);  // ~4x the datapath
  EXPECT_EQ(rs.flop_count, 0u);
}

TEST(Synth, ScanFlopsCostMoreArea) {
  const TechLib lib = TechLib::generic130nm();
  Netlist nl("t");
  Builder b(nl);
  const Bus q = b.state("q", 8);
  b.connect(q, b.bwNot(q));
  b.output("q", q);
  EXPECT_GT(reportArea(nl, lib, /*scan=*/true).total_um2,
            reportArea(nl, lib, /*scan=*/false).total_um2);
}

TEST(Synth, TimingGrowsWithLogicDepth) {
  const TechLib lib = TechLib::generic130nm();
  Netlist shallow("s");
  {
    Builder b(shallow);
    b.output("y", b.add(b.input("a", 4), b.input("b", 4)));
  }
  Netlist deep("d");
  {
    Builder b(deep);
    b.output("y", b.add(b.input("a", 24), b.input("b", 24)));
  }
  const auto ts = analyzeTiming(shallow, lib);
  const auto td = analyzeTiming(deep, lib);
  EXPECT_GT(td.critical_path_ns, ts.critical_path_ns);
  EXPECT_GT(td.logic_depth, ts.logic_depth);
  EXPECT_GT(ts.fmax_mhz, td.fmax_mhz);
}

TEST(Synth, RegisteredEndpointIncludesSetup) {
  const TechLib lib = TechLib::generic130nm();
  Netlist nl("t");
  Builder b(nl);
  const Bus q = b.state("q", 4);
  b.connect(q, b.inc(q));
  // No POs: the only endpoints are the flop D pins.
  const auto t = analyzeTiming(nl, lib);
  EXPECT_TRUE(t.endpoint_is_flop);
  EXPECT_GT(t.critical_path_ns, lib.dff().clk_to_q_ns + lib.dff().setup_ns);
  // Scan variant is slower through the muxed-D setup.
  const auto tscan = analyzeTiming(nl, lib, /*scan=*/true);
  EXPECT_GT(tscan.critical_path_ns, t.critical_path_ns);
}

}  // namespace
}  // namespace corebist
